package core

import (
	"fmt"

	"blink/internal/simgpu"
)

// Hybrid PCIe + NVLink transfers, §3.4: the NVIDIA driver cannot mix the
// two fabrics in one topology, so Blink builds separate tree sets over each
// and splits the payload to equalize finishing times, accounting for the
// latency of cudaDeviceDisablePeerAccess (Tdpa) on the PCIe side:
//
//	T_pcie + Tdpa = T_nvl
//	D_pcie = D*BWp/(BWp+BWn) - Tdpa*BWp*BWn/(BWp+BWn),  D_nvl = D - D_pcie

// HybridSplit solves Equation 8. Bandwidths are in GB/s, tdpa in seconds.
// The PCIe share is clamped to [0, total] (tiny transfers skip PCIe
// entirely because Tdpa would dominate).
func HybridSplit(total int64, bwPCIeGBs, bwNVLGBs, tdpa float64) (pcie, nvl int64) {
	if bwPCIeGBs <= 0 || bwNVLGBs <= 0 {
		return 0, total
	}
	bp := bwPCIeGBs * 1e9
	bn := bwNVLGBs * 1e9
	d := float64(total)*bp/(bp+bn) - tdpa*bp*bn/(bp+bn)
	if d < 0 {
		d = 0
	}
	if d > float64(total) {
		d = float64(total)
	}
	pcie = (int64(d) / 4) * 4 // float32 aligned
	return pcie, total - pcie
}

// HybridResult reports a hybrid transfer's composition and timing.
type HybridResult struct {
	NVLBytes, PCIeBytes int64
	NVLTime, PCIeTime   float64
	Tdpa                float64
	Makespan            float64
	ThroughputGBs       float64
}

// BuildHybridBroadcast splits a broadcast across the NVLink and PCIe
// fabrics (each with its own packing), sizes the shares with Equation 8
// using probe-measured effective bandwidths (Blink measures Tdpa and rates
// during its initial calls), executes both plans, and composes the result:
// the fabrics run concurrently, with the PCIe side paying Tdpa up front.
// bufs is the per-call buffer arena data-mode executions move floats
// through (nil for timing-only runs).
func BuildHybridBroadcast(fNVL *simgpu.Fabric, pNVL *Packing, fPCIe *simgpu.Fabric, pPCIe *Packing, bytes int64, opts PlanOptions, bufs *simgpu.BufferSet) (*HybridResult, error) {
	if bytes < 8 {
		return nil, fmt.Errorf("core: hybrid payload too small")
	}
	// Probes are timing-only regardless of the caller's mode: they size the
	// split, they don't carry payload.
	probeOpts := opts
	probeOpts.DataMode = false
	probe := func(f *simgpu.Fabric, p *Packing) (float64, error) {
		plan, err := BuildBroadcastPlan(f, p, 64<<20, probeOpts)
		if err != nil {
			return 0, err
		}
		return plan.ThroughputGBs()
	}
	bwN, err := probe(fNVL, pNVL)
	if err != nil {
		return nil, fmt.Errorf("core: NVLink probe: %w", err)
	}
	bwP, err := probe(fPCIe, pPCIe)
	if err != nil {
		return nil, fmt.Errorf("core: PCIe probe: %w", err)
	}
	cfg := fNVL.Cfg
	tdpa := cfg.DisablePeerBase + cfg.DisablePeerPerGPU*float64(fNVL.Topo.NumGPUs)

	// Blink measures effective rates during the initial calls; emulate that
	// with a few rebalancing iterations: split using the current bandwidth
	// estimates, execute, then refine the estimates from the measured times.
	var best *HybridResult
	for iter := 0; iter < 4; iter++ {
		pcieBytes, nvlBytes := HybridSplit(bytes, bwP, bwN, tdpa)
		res := &HybridResult{NVLBytes: nvlBytes, PCIeBytes: pcieBytes, Tdpa: tdpa}
		if nvlBytes >= 4 {
			plan, err := BuildBroadcastPlan(fNVL, pNVL, nvlBytes, opts)
			if err != nil {
				return nil, err
			}
			r, err := plan.ExecuteData(bufs)
			if err != nil {
				return nil, err
			}
			res.NVLTime = r.Makespan
		}
		if pcieBytes >= 4 {
			plan, err := BuildBroadcastPlan(fPCIe, pPCIe, pcieBytes, opts)
			if err != nil {
				return nil, err
			}
			r, err := plan.ExecuteData(bufs)
			if err != nil {
				return nil, err
			}
			res.PCIeTime = r.Makespan + tdpa
		}
		res.Makespan = res.NVLTime
		if res.PCIeTime > res.Makespan {
			res.Makespan = res.PCIeTime
		}
		if res.Makespan > 0 {
			res.ThroughputGBs = float64(bytes) / res.Makespan / 1e9
		}
		if best == nil || res.Makespan < best.Makespan {
			best = res
		}
		// Refine estimates with measured effective bandwidths.
		if res.NVLTime > 0 {
			bwN = float64(res.NVLBytes) / res.NVLTime / 1e9
		}
		if res.PCIeTime > tdpa && res.PCIeBytes > 0 {
			bwP = float64(res.PCIeBytes) / (res.PCIeTime - tdpa) / 1e9
		} else if res.PCIeBytes == 0 {
			break // nothing assigned to PCIe; split is stable
		}
	}
	return best, nil
}
