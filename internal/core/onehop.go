package core

import (
	"fmt"

	"blink/internal/graph"
	"blink/internal/topology"
)

// OneHopTrees builds Blink's DGX-2 schedule structure (§3.5): with m GPUs
// behind a non-blocking switch, each GPU roots one single-hop tree over 1/m
// of the data, directly connected to the other m-1 GPUs through the switch.
// The trees live on the logical all-to-all graph lg (topology.DGX2Logical),
// which the switch fabric maps onto physical attach links. The returned
// packings are per-root; each tree's weight is the per-GPU attach capacity
// divided by the m-1 co-resident trees sharing every down-link.
func OneHopTrees(t *topology.Topology, lg *graph.Graph) ([]*Packing, error) {
	if t.Kind != topology.KindDGX2 {
		return nil, fmt.Errorf("core: one-hop trees require a switch topology, got %v", t.Name)
	}
	m := lg.N
	if m < 2 {
		return nil, fmt.Errorf("core: logical graph too small (%d vertices)", m)
	}
	// edge[u][v] = logical edge ID u->v.
	edge := make([][]int, m)
	for i := range edge {
		edge[i] = make([]int, m)
		for j := range edge[i] {
			edge[i][j] = -1
		}
	}
	for _, e := range lg.Edges {
		edge[e.From][e.To] = e.ID
	}
	var out []*Packing
	for root := 0; root < m; root++ {
		var edges []int
		// Rotated leaf order: root r reaches leaf r+1 first, r+2 second,
		// and so on, so the m concurrent trees never converge on the same
		// receiver at the same step (all-to-all staggering).
		for i := 1; i < m; i++ {
			leaf := (root + i) % m
			id := edge[root][leaf]
			if id < 0 {
				return nil, fmt.Errorf("core: logical graph missing edge %d->%d", root, leaf)
			}
			edges = append(edges, id)
		}
		arbo := graph.Arborescence{Root: root, Edges: edges}
		if err := arbo.Validate(lg); err != nil {
			return nil, fmt.Errorf("core: one-hop tree for root %d invalid: %w", root, err)
		}
		w := float64(topology.DGX2LinksPerGPU) / float64(m-1)
		out = append(out, &Packing{
			Root:  root,
			Trees: []Tree{{Arbo: arbo, Weight: w}},
			Rate:  w,
			Bound: float64(topology.DGX2LinksPerGPU),
		})
	}
	return out, nil
}
