package collective

import (
	"errors"
	"testing"
	"time"
)

// TestTenantDefaults checks NewTenant's defaulting: an invalid class
// degrades to the BulkGradient lane and an empty name gets a generated
// label.
func TestTenantDefaults(t *testing.T) {
	eng := newTestEngine(t)
	tn := eng.NewTenant(TenantConfig{Class: Class(99)})
	if tn.Class() != BulkGradient {
		t.Fatalf("invalid class defaulted to %v, want BulkGradient", tn.Class())
	}
	if tn.Name() == "" {
		t.Fatal("empty name not defaulted")
	}
	named := eng.NewTenant(TenantConfig{Name: "job", Class: Telemetry})
	if named.Name() != "job" || named.Class() != Telemetry {
		t.Fatalf("tenant identity %s/%v", named.Name(), named.Class())
	}
}

// TestNilTenantAccounting checks the note* family is nil-safe, so the
// lane scheduler runs without tenants.
func TestNilTenantAccounting(t *testing.T) {
	var tn *Tenant
	tn.noteSubmitted(8)
	if !tn.admitWithinQuota(1 << 40) {
		t.Fatal("nil tenant must have no quota")
	}
	tn.noteAdmitted(8, true)
	tn.noteRejected(8)
	tn.noteDone(8)
	tn.noteLookup(true)
}

// TestConfigureQoSBeforeFirstUse checks configuration lands on the lane
// scheduler when applied before first tenant dispatch, and that the
// anonymous (nil-tenant) path still runs through the default lane.
func TestConfigureQoSBeforeFirstUse(t *testing.T) {
	eng := newTestEngine(t)
	cfg := QoSConfig{Workers: 1, AgingAfter: time.Hour}
	cfg.Lanes[BulkGradient] = LaneConfig{QueueCap: 7}
	eng.ConfigureQoS(cfg)

	h, v := eng.RunAsyncTenant(nil, Blink, AllReduce, 0, 4<<20, Options{})
	if v == VerdictReject {
		t.Fatalf("anonymous submission rejected: %v", h.Err())
	}
	if _, err := h.Wait(); err != nil {
		t.Fatal(err)
	}
	sched := eng.qos.scheduler(eng.Metrics())
	if got := sched.lanes[BulkGradient].cfg.QueueCap; got != 7 {
		t.Fatalf("lane queue cap %d, want the configured 7", got)
	}
	if sched.workers != 1 {
		t.Fatalf("worker pool %d, want the configured 1", sched.workers)
	}
}

// TestSnapshotRunTenant checks the synchronous pinned-snapshot tenant
// dispatch: success on an open quota, ErrAdmissionRejected once the
// tenant's byte quota is exhausted by an in-flight op.
func TestSnapshotRunTenant(t *testing.T) {
	eng := newTestEngine(t)
	snap := eng.Snapshot()
	tn := eng.NewTenant(TenantConfig{Name: "sync", Class: LatencyCritical})
	if _, err := snap.RunTenant(tn, Blink, AllReduce, 0, 4<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := tn.Stats(); st.CompletedOps != 1 || st.OutstandingOps != 0 {
		t.Fatalf("ledger %+v after one sync op", st)
	}

	capped := eng.NewTenant(TenantConfig{Name: "capped", ByteQuota: 1})
	_, err := snap.RunTenant(capped, Blink, AllReduce, 0, 4<<20, Options{})
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("byte-quota violation returned %v, want ErrAdmissionRejected", err)
	}
}
