package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"blink/internal/collective"
	"blink/internal/core"
	"blink/internal/simgpu"
	"blink/internal/topology"
)

// compileFastPath compares time-to-first-usable-plan of the approximate-
// first fast path against the full exact compile on a cold engine.
type compileFastPath struct {
	Op                string  `json:"op"`
	Bytes             int64   `json:"bytes"`
	ExactColdMillis   float64 `json:"exactColdMillis"`
	FastColdMillis    float64 `json:"fastColdMillis"`
	Speedup           float64 `json:"speedup"`
	FastPathCompiles  uint64  `json:"fastPathCompiles"`
	RefineSwaps       uint64  `json:"refineSwaps"`
	ApproxRate        float64 `json:"approxRate"`
	RefinedRate       float64 `json:"refinedRate"`
	RateBound         float64 `json:"rateBound"`
	RefineWaitMillis  float64 `json:"refineWaitMillis"`
	MeetsSpeedupOfTwo bool    `json:"meetsSpeedupOfTwo"`
}

// compileRepair compares single-machine fault replanning via incremental
// packing repair against the full per-root recompile baseline.
type compileRepair struct {
	Fault             string  `json:"fault"`
	Roots             int     `json:"roots"`
	FullMillis        float64 `json:"fullRecompileMillis"`
	IncrementalMillis float64 `json:"incrementalMillis"`
	Speedup           float64 `json:"speedup"`
	RepairedRoots     uint64  `json:"repairedRoots"`
	FallbackRoots     uint64  `json:"fallbackRoots"`
	MinRateRatio      float64 `json:"minRateRatio"`
	MeetsSpeedupOfTen bool    `json:"meetsSpeedupOfTen"`
}

// compileStage is one stage's latency aggregate from the engine's
// blink_compile_stage_seconds histogram family.
type compileStage struct {
	Stage        string  `json:"stage"`
	Count        uint64  `json:"count"`
	TotalSeconds float64 `json:"totalSeconds"`
}

// compileReport is the schema of BENCH_compile.json.
type compileReport struct {
	Methodology string          `json:"methodology"`
	Machine     string          `json:"machine"`
	Devices     []int           `json:"devices"`
	GoVersion   string          `json:"goVersion"`
	GOOS        string          `json:"goos"`
	GOARCH      string          `json:"goarch"`
	FastPath    compileFastPath `json:"fastPath"`
	Repair      compileRepair   `json:"repair"`
	Stages      []compileStage  `json:"stages"`
}

const compileMethodology = "fastPath: two cold engines on a full 8-GPU " +
	"DGX-1V dispatch the same Broadcast; one compiles the exact " +
	"enumerate→minimize→fill pipeline inline, the other publishes an " +
	"approximate greedy packing first (SetFastCompile) and refines in the " +
	"background. Cold millis is wall-clock to the first returned result. " +
	"repair: two engines prewarm exact packings for every root, then lose " +
	"one NVLink; millis is wall-clock for Reconfigure plus re-resolving " +
	"all root packings — incremental repair reuses trees the fault missed, " +
	"the baseline (SetIncrementalRepair(false)) recompiles every root from " +
	"scratch. stages aggregates the engines' per-stage compile-latency " +
	"histograms (blink_compile_stage_seconds)."

// runCompileBench measures the staged-compile pipeline and writes the JSON
// report to out.
func runCompileBench(out io.Writer) error {
	machine := topology.DGX1V()
	devs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rep := compileReport{
		Methodology: compileMethodology,
		Machine:     machine.Name,
		Devices:     devs,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}

	// --- Fast-path cold start ---------------------------------------------
	const bytes = 64 << 20
	exactEng, err := collective.NewEngine(machine, devs, simgpu.Config{})
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := exactEng.Run(collective.Blink, collective.Broadcast, 0, bytes, collective.Options{}); err != nil {
		return err
	}
	exactCold := time.Since(t0)
	exactPack, err := exactEng.Packing(0)
	if err != nil {
		return err
	}

	fastEng, err := collective.NewEngine(machine, devs, simgpu.Config{})
	if err != nil {
		return err
	}
	fastEng.SetFastCompile(true)
	t0 = time.Now()
	if _, err := fastEng.Run(collective.Blink, collective.Broadcast, 0, bytes, collective.Options{}); err != nil {
		return err
	}
	fastCold := time.Since(t0)
	approxPack, err := fastEng.Packing(0)
	if err != nil {
		return err
	}
	t0 = time.Now()
	fastEng.WaitRefinements()
	refineWait := time.Since(t0)
	refinedPack, err := fastEng.Packing(0)
	if err != nil {
		return err
	}

	fp := compileFastPath{
		Op:               "Broadcast",
		Bytes:            bytes,
		ExactColdMillis:  float64(exactCold) / 1e6,
		FastColdMillis:   float64(fastCold) / 1e6,
		FastPathCompiles: fastEng.Metrics().Counter("blink_fastpath_compiles_total").Value(),
		RefineSwaps:      fastEng.Metrics().Counter("blink_refine_swaps_total").Value(),
		ApproxRate:       approxPack.Rate,
		RefinedRate:      refinedPack.Rate,
		RateBound:        exactPack.Bound,
		RefineWaitMillis: float64(refineWait) / 1e6,
	}
	if fastCold > 0 {
		fp.Speedup = float64(exactCold) / float64(fastCold)
	}
	fp.MeetsSpeedupOfTwo = fp.Speedup >= 2
	rep.FastPath = fp

	// --- Incremental fault repair -----------------------------------------
	faulted, err := machine.WithoutLink(0, 3)
	if err != nil {
		return err
	}
	replanAll := func(eng *collective.Engine) (time.Duration, error) {
		t0 := time.Now()
		if err := eng.Reconfigure(faulted, nil); err != nil {
			return 0, err
		}
		for r := range devs {
			if _, err := eng.Packing(r); err != nil {
				return 0, err
			}
		}
		return time.Since(t0), nil
	}

	fullEng, err := collective.NewEngine(machine, devs, simgpu.Config{})
	if err != nil {
		return err
	}
	fullEng.SetIncrementalRepair(false)
	if err := fullEng.Prewarm(nil); err != nil {
		return err
	}
	fullDur, err := replanAll(fullEng)
	if err != nil {
		return err
	}

	incEng, err := collective.NewEngine(machine, devs, simgpu.Config{})
	if err != nil {
		return err
	}
	if err := incEng.Prewarm(nil); err != nil {
		return err
	}
	incDur, err := replanAll(incEng)
	if err != nil {
		return err
	}

	// Quality check: repaired rate vs full-recompile rate per root.
	minRatio := 1.0
	for r := range devs {
		rp, err := incEng.Packing(r)
		if err != nil {
			return err
		}
		fpk, err := fullEng.Packing(r)
		if err != nil {
			return err
		}
		if fpk.Rate > 0 {
			if ratio := rp.Rate / fpk.Rate; ratio < minRatio {
				minRatio = ratio
			}
		}
	}

	cr := compileRepair{
		Fault:             "WithoutLink(0,3)",
		Roots:             len(devs),
		FullMillis:        float64(fullDur) / 1e6,
		IncrementalMillis: float64(incDur) / 1e6,
		RepairedRoots:     incEng.Metrics().Counter("blink_repair_incremental_total").Value(),
		FallbackRoots:     incEng.Metrics().Counter("blink_repair_fallback_total").Value(),
		MinRateRatio:      minRatio,
	}
	if incDur > 0 {
		cr.Speedup = float64(fullDur) / float64(incDur)
	}
	cr.MeetsSpeedupOfTen = cr.Speedup >= 10
	rep.Repair = cr

	// --- Per-stage latency aggregates -------------------------------------
	for _, stage := range []string{core.StageEnumerate, core.StageMinimize, core.StageFill, core.StageCodegen, core.StageRepair} {
		var count uint64
		var total float64
		for _, eng := range []*collective.Engine{exactEng, fastEng, fullEng, incEng} {
			h := eng.Metrics().Histogram(`blink_compile_stage_seconds{stage="`+stage+`"}`, nil)
			count += h.Count()
			total += h.Sum()
		}
		rep.Stages = append(rep.Stages, compileStage{Stage: stage, Count: count, TotalSeconds: total})
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// compileMain handles the -compile flag; -check additionally gates the
// fast-path (>=2x) and incremental-repair (>=10x) speedups for CI.
func compileMain(path string) {
	writeReport(path, "compile", runCompileBench)
}

// compileCheck re-runs the compile bench discarding output and exits
// non-zero unless both speedup gates hold. Used by `make compile-smoke`.
func compileCheck() error {
	var buf jsonCapture
	if err := runCompileBench(&buf); err != nil {
		return err
	}
	var rep compileReport
	if err := json.Unmarshal(buf.data, &rep); err != nil {
		return err
	}
	if !rep.FastPath.MeetsSpeedupOfTwo {
		return fmt.Errorf("fast-path cold compile speedup %.2fx < 2x (exact %.2fms, fast %.2fms)",
			rep.FastPath.Speedup, rep.FastPath.ExactColdMillis, rep.FastPath.FastColdMillis)
	}
	if !rep.Repair.MeetsSpeedupOfTen {
		return fmt.Errorf("incremental repair speedup %.2fx < 10x (full %.2fms, incremental %.2fms)",
			rep.Repair.Speedup, rep.Repair.FullMillis, rep.Repair.IncrementalMillis)
	}
	fmt.Printf("compile-smoke: fast path %.1fx (>=2x), incremental repair %.1fx (>=10x), min rate ratio %.3f\n",
		rep.FastPath.Speedup, rep.Repair.Speedup, rep.Repair.MinRateRatio)
	return nil
}

// jsonCapture buffers writes in memory for compileCheck's self-parse.
type jsonCapture struct{ data []byte }

func (c *jsonCapture) Write(p []byte) (int, error) {
	c.data = append(c.data, p...)
	return len(p), nil
}
