package collective

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"blink/internal/simgpu"
	"blink/internal/topology"
)

func TestPlanCacheLRU(t *testing.T) {
	c := NewPlanCache(2)
	k := func(i int) PlanKey { return PlanKey{Fingerprint: "f", Bytes: int64(i)} }
	v := &CachedPlan{Strategy: "x"}
	c.Put(k(1), v)
	c.Put(k(2), v)
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("key 1 evicted prematurely")
	}
	c.Put(k(3), v) // evicts key 2 (key 1 was just used)
	if _, ok := c.Get(k(2)); ok {
		t.Fatal("key 2 should have been evicted (LRU)")
	}
	if _, ok := c.Get(k(1)); !ok {
		t.Fatal("key 1 should survive")
	}
	if _, ok := c.Get(k(3)); !ok {
		t.Fatal("key 3 should be resident")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction", st)
	}
}

func TestPlanCacheZeroCapacity(t *testing.T) {
	c := NewPlanCache(0)
	c.Put(PlanKey{Bytes: 1}, &CachedPlan{})
	if _, ok := c.Get(PlanKey{Bytes: 1}); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
	if st := c.Stats(); st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunHitsPlanCache(t *testing.T) {
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	cold, err := e.Run(Blink, AllReduce, 0, 100<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after cold run: %+v, want 1 miss / 0 hits", st)
	}
	warm, err := e.Run(Blink, AllReduce, 0, 100<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st = e.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after warm run: %+v, want 1 hit / 1 miss", st)
	}
	// Replay is deterministic: identical simulated timing and strategy.
	if warm.Seconds != cold.Seconds || warm.Strategy != cold.Strategy {
		t.Fatalf("warm replay diverged: cold=%+v warm=%+v", cold, warm)
	}
	// A different size is a different schedule.
	if _, err := e.Run(Blink, AllReduce, 0, 64<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if st = e.CacheStats(); st.Misses != 2 {
		t.Fatalf("distinct size should miss: %+v", st)
	}
}

func TestWarmDispatchFasterThanCold(t *testing.T) {
	// The acceptance bar for the cache: a warm AllReduce dispatch must not
	// re-run TreeGen/minimize/CodeGen, so its wall time sits far below the
	// cold compile. Compilation for a full 8-GPU packing costs tens of
	// milliseconds (ILP minimization); replay costs well under one.
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	start := time.Now()
	if _, err := e.Run(Blink, AllReduce, 0, 100<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)
	warm := time.Duration(1 << 62)
	for i := 0; i < 3; i++ { // best-of-3 absorbs scheduler noise
		start = time.Now()
		if _, err := e.Run(Blink, AllReduce, 0, 100<<20, Options{}); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}
	if warm >= cold {
		t.Fatalf("warm dispatch %v not below cold %v", warm, cold)
	}
}

func TestConcurrentRunsOneEngine(t *testing.T) {
	// >= 8 concurrent collectives (mixed backends, ops and sizes) through
	// one engine; run under -race this is the concurrency-safety gate.
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	type call struct {
		b     Backend
		op    Op
		bytes int64
	}
	calls := []call{
		{Blink, AllReduce, 100 << 20},
		{Blink, AllReduce, 100 << 20},
		{Blink, Broadcast, 64 << 20},
		{Blink, Gather, 32 << 20},
		{NCCL, AllReduce, 100 << 20},
		{NCCL, Broadcast, 64 << 20},
		{Blink, ReduceScatter, 16 << 20},
		{NCCL, AllReduce, 8 << 20},
		{Blink, AllReduce, 8 << 20},
		{Blink, Scatter, 64 << 20},
	}
	const rounds = 4
	errs := make(chan error, len(calls)*rounds)
	// Rounds are barriers: round 1's concurrent cold calls populate the
	// cache (identical concurrent misses may each compile — harmless),
	// every later round is all-warm replay.
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for _, c := range calls {
			wg.Add(1)
			go func(c call) {
				defer wg.Done()
				res, err := e.Run(c.b, c.op, 0, c.bytes, Options{})
				if err != nil {
					errs <- fmt.Errorf("%v %v: %w", c.b, c.op, err)
					return
				}
				if res.Seconds <= 0 {
					errs <- fmt.Errorf("%v %v: no time elapsed", c.b, c.op)
				}
			}(c)
		}
		wg.Wait()
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := e.CacheStats()
	if st.Hits+st.Misses != uint64(len(calls)*rounds) {
		t.Fatalf("dispatch count %d != %d", st.Hits+st.Misses, len(calls)*rounds)
	}
	if st.Hits < uint64(len(calls)*(rounds-1)) {
		t.Fatalf("rounds 2..%d must be all-warm: %+v", rounds, st)
	}
	if st.Misses > uint64(len(calls)) {
		t.Fatalf("more misses than round-1 calls: %+v", st)
	}
}

func TestConcurrentRunsDeterministic(t *testing.T) {
	// Concurrency must not perturb simulated timings: every concurrent
	// replay of one schedule reports the sequential result.
	e := newEng(t, []int{1, 4, 5, 6})
	want, err := e.Run(Blink, AllReduce, 0, 50<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]Result, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := e.Run(Blink, AllReduce, 0, 50<<20, Options{})
			if err == nil {
				results[i] = r
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.Seconds != want.Seconds {
			t.Fatalf("replay %d: %.9f != %.9f", i, r.Seconds, want.Seconds)
		}
	}
}

func TestSharedPlanCacheAcrossEngines(t *testing.T) {
	shared := NewPlanCache(DefaultPlanCacheCapacity)
	e1 := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	e1.SetPlanCache(shared)
	e2 := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	e2.SetPlanCache(shared)
	if _, err := e1.Run(Blink, AllReduce, 0, 32<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	// Same machine, same allocation -> same fingerprint -> e2 hits.
	if _, err := e2.Run(Blink, AllReduce, 0, 32<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	st := shared.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("shared cache stats = %+v, want 1 hit / 1 miss", st)
	}
	// Different allocation -> different fingerprint -> no false hit.
	e3, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e3.SetPlanCache(shared)
	if _, err := e3.Run(Blink, AllReduce, 0, 32<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if st = shared.Stats(); st.Misses != 2 {
		t.Fatalf("different allocation must miss: %+v", st)
	}
}

func TestSharedCacheRespectsConfig(t *testing.T) {
	// Plans bake the timing model into every op, so two engines sharing a
	// cache but differing in simgpu.Config must never satisfy each other.
	shared := NewPlanCache(DefaultPlanCacheCapacity)
	fast, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast.SetPlanCache(shared)
	slow, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.Config{OpOverhead: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	slow.SetPlanCache(shared)
	rf, err := fast.Run(Blink, AllReduce, 0, 1<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := slow.Run(Blink, AllReduce, 0, 1<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := shared.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("config change must miss: %+v", st)
	}
	if rs.Seconds <= rf.Seconds {
		t.Fatalf("1s-overhead engine reported %.6fs <= default %.6fs (cached plan leaked across configs)", rs.Seconds, rf.Seconds)
	}
	// Zero config and the explicit defaults normalize identically: share.
	def, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	def.SetPlanCache(shared)
	if _, err := def.Run(Blink, AllReduce, 0, 1<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := shared.Stats(); st.Hits != 1 {
		t.Fatalf("DefaultConfig should hit the zero-config plan: %+v", st)
	}
}

func TestSharedCacheDataModeIsolation(t *testing.T) {
	// Data-mode plans carry Exec closures bound to the compiling engine's
	// fabric; a second engine sharing the cache must compile its own and
	// still produce correct sums on its own fabric.
	shared := NewPlanCache(DefaultPlanCacheCapacity)
	mk := func() *Engine {
		e, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.Config{DataMode: true})
		if err != nil {
			t.Fatal(err)
		}
		e.SetPlanCache(shared)
		return e
	}
	const n = 256
	run := func(e *Engine) []float32 {
		bufs := simgpu.NewBufferSet()
		for v := 0; v < 4; v++ {
			in := make([]float32, n)
			for i := range in {
				in[i] = float32(v + 1)
			}
			bufs.SetBuffer(v, 0 /* core.BufData */, in)
		}
		if _, err := e.Run(Blink, AllReduce, 0, n*4, Options{DataMode: true, Buffers: bufs}); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), bufs.Buffer(0, 1 /* core.BufAcc */, n)...)
	}
	for i, e := range []*Engine{mk(), mk()} {
		out := run(e)
		for j := range out {
			if out[j] != 10 {
				t.Fatalf("engine %d sum[%d] = %v, want 10 (cross-engine data-mode plan leak)", i, j, out[j])
			}
		}
	}
	if st := shared.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("data-mode plans must be engine-private: %+v", st)
	}
}

func TestRunManyGroupedDispatch(t *testing.T) {
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	sizes := []int64{25 << 20, 25 << 20, 25 << 20, 10 << 20}
	g1, err := e.RunMany(Blink, AllReduce, 0, sizes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Results) != len(sizes) {
		t.Fatalf("%d results for %d tensors", len(g1.Results), len(sizes))
	}
	// Two distinct sizes -> 2 misses; repeats within the group already hit.
	if g1.CacheMisses != 2 || g1.CacheHits != 2 {
		t.Fatalf("first group: hits=%d misses=%d, want 2/2", g1.CacheHits, g1.CacheMisses)
	}
	var sum float64
	var bytes int64
	for _, r := range g1.Results {
		sum += r.Seconds
		bytes += r.Bytes
	}
	if g1.Seconds != sum || g1.Bytes != bytes {
		t.Fatalf("group totals inconsistent: %+v", g1)
	}
	// Steady state: the whole group replays.
	g2, err := e.RunMany(Blink, AllReduce, 0, sizes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.CacheMisses != 0 || g2.CacheHits != uint64(len(sizes)) {
		t.Fatalf("warm group: hits=%d misses=%d", g2.CacheHits, g2.CacheMisses)
	}
	if g2.Seconds != g1.Seconds {
		t.Fatalf("warm group time %.9f != cold %.9f", g2.Seconds, g1.Seconds)
	}
	if _, err := e.RunMany(Blink, AllReduce, 0, nil, Options{}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestDataModeCachedReplay(t *testing.T) {
	// Data-mode plans are cached too; replaying one with fresh inputs must
	// produce fresh correct results (closures read buffers at exec time).
	e, err := NewEngine(topology.DGX1V(), []int{0, 1, 2, 3}, simgpu.Config{DataMode: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	run := func(scale float32) []float32 {
		bufs := simgpu.NewBufferSet()
		for v := 0; v < 4; v++ {
			in := make([]float32, n)
			for i := range in {
				in[i] = scale * float32(v+1)
			}
			bufs.SetBuffer(v, 0 /* core.BufData */, in)
		}
		if _, err := e.Run(Blink, AllReduce, 0, n*4, Options{DataMode: true, Buffers: bufs}); err != nil {
			t.Fatal(err)
		}
		return append([]float32(nil), bufs.Buffer(0, 1 /* core.BufAcc */, n)...)
	}
	got1 := run(1) // cold compile
	got2 := run(2) // warm replay, doubled inputs
	st := e.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("data-mode cache stats = %+v", st)
	}
	for i := range got1 {
		if got1[i] != 10 { // 1+2+3+4
			t.Fatalf("cold sum[%d] = %v, want 10", i, got1[i])
		}
		if got2[i] != 20 {
			t.Fatalf("warm sum[%d] = %v, want 20", i, got2[i])
		}
	}
}
