package collective

import (
	"strings"
	"sync"
	"testing"

	"blink/internal/trace"
)

// TestExchangeOpsObservability drives the three point-to-point collectives
// through RunAsync from concurrent callers and checks the observability
// layer end to end: every dispatch lands a completed span, the span set
// converts to a non-empty swimlane trace, and the plan-cache counters
// attribute every lookup exactly (hits + misses == lookups, with
// compiles/replays mirroring the split) even under contention.
func TestExchangeOpsObservability(t *testing.T) {
	eng := newTestEngine(t)
	tl := eng.EnableTimeline()
	chain := []int{0, 1, 2, 3, 4, 5, 6, 7}
	neighbors := make([][]int, 8)
	for v := range neighbors {
		neighbors[v] = []int{(v + 1) % 8, (v + 7) % 8}
	}
	cases := []struct {
		op   Op
		opts Options
	}{
		{AllToAll, Options{}},
		{SendRecv, Options{Chain: chain}},
		{NeighborExchange, Options{Neighbors: neighbors}},
	}

	const callers, rounds = 4, 2
	var wg sync.WaitGroup
	errs := make(chan error, callers*rounds*len(cases))
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, tc := range cases {
					h := eng.RunAsync(Blink, tc.op, 0, 8<<20, tc.opts, -1)
					if _, err := h.Wait(); err != nil {
						errs <- err
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := callers * rounds * len(cases)
	spans := tl.Spans()
	if len(spans) != total {
		t.Fatalf("timeline recorded %d spans, want %d", len(spans), total)
	}
	seen := map[string]int{}
	for _, s := range spans {
		seen[s.Name]++
		if s.Err != "" {
			t.Fatalf("span %s failed: %s", s.Name, s.Err)
		}
		if s.Stream < 0 {
			t.Fatalf("async span %s kept placeholder stream %d", s.Name, s.Stream)
		}
		if s.SimSeconds <= 0 || s.Chunks == 0 {
			t.Fatalf("span %s missing simulation outcome: %+v", s.Name, s)
		}
		if s.CompletedAt < s.DispatchedAt || s.DispatchedAt < s.QueuedAt {
			t.Fatalf("span %s milestones out of order: %+v", s.Name, s)
		}
	}
	for _, tc := range cases {
		if seen[tc.op.String()] != callers*rounds {
			t.Fatalf("op %v recorded %d spans, want %d", tc.op, seen[tc.op.String()], callers*rounds)
		}
	}

	// The span set must render as a non-empty swimlane trace: one complete
	// event per span (plus queue events where ops waited), every lane a
	// worker stream.
	f := trace.FromSpans(spans)
	if len(f.TraceEvents) < total {
		t.Fatalf("swimlane trace has %d events for %d spans", len(f.TraceEvents), total)
	}
	var sb strings.Builder
	if err := f.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if !strings.Contains(sb.String(), `"name": "`+tc.op.String()+`"`) {
			t.Fatalf("swimlane trace missing %v events", tc.op)
		}
	}

	// Exact attribution: every lookup is either a hit or a miss, every miss
	// compiled, every hit replayed — no dispatch lost or double-counted
	// under concurrent callers.
	snap := eng.Metrics().Snapshot()
	lookups := snap.Counters["blink_plan_cache_lookups_total"]
	hits := snap.Counters["blink_plan_cache_hits_total"]
	misses := snap.Counters["blink_plan_cache_misses_total"]
	if lookups != uint64(total) {
		t.Fatalf("lookups = %d, want %d (one per dispatch)", lookups, total)
	}
	if hits+misses != lookups {
		t.Fatalf("hits %d + misses %d != lookups %d", hits, misses, lookups)
	}
	if got := snap.Counters["blink_plan_compiles_total"]; got != misses {
		t.Fatalf("compiles %d != misses %d", got, misses)
	}
	if got := snap.Counters["blink_plan_replays_total"]; got != hits {
		t.Fatalf("replays %d != hits %d", got, hits)
	}
	// Three distinct plans serve all the traffic, so hits dominate.
	if misses < uint64(len(cases)) || hits == 0 {
		t.Fatalf("implausible split: hits %d misses %d", hits, misses)
	}
	// Per-op makespan histograms observed every dispatch.
	var observed uint64
	for _, tc := range cases {
		h := snap.Histograms[`blink_op_sim_seconds{op="`+tc.op.String()+`"}`]
		if h.Count != uint64(callers*rounds) {
			t.Fatalf("op histogram for %v has %d observations, want %d",
				tc.op, h.Count, callers*rounds)
		}
		observed += h.Count
	}
	if observed != uint64(total) {
		t.Fatalf("histograms observed %d dispatches, want %d", observed, total)
	}
}

// TestSyncDispatchSpans checks synchronous Run calls record spans too, with
// the sentinel stream -1 (they never enter the stream scheduler).
func TestSyncDispatchSpans(t *testing.T) {
	eng := newTestEngine(t)
	tl := eng.EnableTimeline()
	if _, err := eng.Run(Blink, AllReduce, 0, 4<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	spans := tl.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if spans[0].Stream != -1 {
		t.Fatalf("sync span stream = %d, want -1", spans[0].Stream)
	}
	if spans[0].CacheHit {
		t.Fatal("cold dispatch recorded as cache hit")
	}
	if _, err := eng.Run(Blink, AllReduce, 0, 4<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if spans = tl.Spans(); !spans[1].CacheHit {
		t.Fatal("warm dispatch not recorded as cache hit")
	}
}

// TestReplanMetrics checks a reconfiguration lands on the replan counter
// and latency histogram, and invalidation is attributed on the cache.
func TestReplanMetrics(t *testing.T) {
	eng := newTestEngine(t)
	if _, err := eng.Run(Blink, AllReduce, 0, 4<<20, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.ReconfigureExclude([]int{7}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	if got := snap.Counters["blink_replans_total"]; got != 1 {
		t.Fatalf("replans = %d, want 1", got)
	}
	if h := snap.Histograms["blink_replan_seconds"]; h.Count != 1 {
		t.Fatalf("replan latency observations = %d, want 1", h.Count)
	}
	if got := snap.Counters["blink_plan_cache_invalidated_total"]; got == 0 {
		t.Fatal("reconfigure invalidated no cached plans")
	}
}
