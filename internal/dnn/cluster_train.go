package dnn

import (
	"fmt"
	"sync"

	"blink/internal/cluster"
	"blink/internal/collective"
	"blink/internal/simgpu"
	"blink/internal/topology"
)

// ClusterEngineComm adapts a cluster engine as a CommFn: gradient
// AllReduces run the cached three-phase protocol (Blink) or the flat
// cross-machine ring (NCCL). Safe for concurrent use.
func ClusterEngineComm(eng *collective.ClusterEngine, backend collective.Backend) CommFn {
	var mu sync.Mutex
	cache := map[int64]float64{}
	return func(bytes int64) (float64, error) {
		mu.Lock()
		t, ok := cache[bytes]
		mu.Unlock()
		if ok {
			return t, nil
		}
		res, err := eng.Run(backend, collective.AllReduce, 0, bytes, collective.Options{})
		if err != nil {
			return 0, err
		}
		t = res.Seconds + CollectiveCallLatency
		mu.Lock()
		cache[bytes] = t
		mu.Unlock()
		return t, nil
	}
}

// ClusterTrainStep issues one data-parallel step's gradient buckets as a
// grouped cluster collective — the multi-server counterpart of TrainStep.
// The first step compiles one three-phase schedule per distinct bucket
// size; later steps replay frozen cluster plans.
func ClusterTrainStep(eng *collective.ClusterEngine, backend collective.Backend, m *Model, bucketBytes int64) (collective.GroupResult, error) {
	sizes := GradientBuckets(m, bucketBytes)
	if len(sizes) == 0 {
		return collective.GroupResult{}, fmt.Errorf("dnn: model %s has no gradients", m.Name)
	}
	return eng.RunMany(backend, collective.AllReduce, 0, sizes, collective.Options{})
}

// SimulateClusterTrainingRun drives iters multi-server training steps of
// the model through one cluster engine, separating the cold first step
// (schedule compilation across every server plus the NIC phase) from the
// warm steady state (frozen cluster-plan replay).
func SimulateClusterTrainingRun(eng *collective.ClusterEngine, backend collective.Backend, m *Model, bucketBytes int64, iters int, clock func() float64) (TrainingRun, error) {
	if iters < 2 {
		return TrainingRun{}, fmt.Errorf("dnn: need >= 2 iterations to split cold/warm, got %d", iters)
	}
	tr := TrainingRun{Model: m.Name, Iterations: iters, Buckets: len(GradientBuckets(m, bucketBytes))}
	for it := 0; it < iters; it++ {
		start := clock()
		g, err := ClusterTrainStep(eng, backend, m, bucketBytes)
		if err != nil {
			return TrainingRun{}, err
		}
		elapsed := clock() - start
		if it == 0 {
			tr.ColdWallSeconds = elapsed
			tr.StepSeconds = g.Seconds
		} else {
			tr.WarmWallSeconds += elapsed / float64(iters-1)
		}
		tr.CacheHits += g.CacheHits
		tr.CacheMisses += g.CacheMisses
	}
	return tr, nil
}

// ScenarioTraining reports one fragmentation scenario's training-step
// simulation: the Blink three-phase run plus the flat-ring baseline step.
type ScenarioTraining struct {
	// Allocation is the canonical piece signature, e.g. "5+3".
	Allocation string
	GPUs       int
	Run        TrainingRun
	// RingStepSeconds is the same step's simulated collective time on the
	// flat cross-machine ring.
	RingStepSeconds float64
	// StepSpeedup is ring/three-phase simulated step time.
	StepSpeedup float64
}

// SimulateScenarioTraining instantiates each scheduler-derived scenario on
// the machine, runs a short bucketed training loop through a cluster
// engine with both backends, and reports per-scenario cold/warm dispatch
// and the three-phase vs flat-ring step comparison.
func SimulateScenarioTraining(scenarios []cluster.Scenario, machine *topology.Topology, nicGbps float64, m *Model, bucketBytes int64, iters int, clock func() float64) ([]ScenarioTraining, error) {
	var out []ScenarioTraining
	for _, sc := range scenarios {
		c, err := sc.Cluster(machine, nicGbps)
		if err != nil {
			return nil, err
		}
		eng, err := collective.NewClusterEngine(c, simgpu.Config{})
		if err != nil {
			return nil, fmt.Errorf("dnn: scenario %s: %w", sc.Key(), err)
		}
		run, err := SimulateClusterTrainingRun(eng, collective.Blink, m, bucketBytes, iters, clock)
		if err != nil {
			return nil, fmt.Errorf("dnn: scenario %s: %w", sc.Key(), err)
		}
		ringStep, err := ClusterTrainStep(eng, collective.NCCL, m, bucketBytes)
		if err != nil {
			return nil, fmt.Errorf("dnn: scenario %s ring baseline: %w", sc.Key(), err)
		}
		st := ScenarioTraining{
			Allocation:      sc.Key(),
			GPUs:            c.TotalGPUs(),
			Run:             run,
			RingStepSeconds: ringStep.Seconds,
		}
		if run.StepSeconds > 0 {
			st.StepSpeedup = ringStep.Seconds / run.StepSeconds
		}
		out = append(out, st)
	}
	return out, nil
}
