package collective

import (
	"math/rand"
	"testing"

	"blink/internal/simgpu"
	"blink/internal/topology"
)

func testCluster(t *testing.T, pieces []int, nicGbps float64) *topology.Cluster {
	t.Helper()
	var servers []topology.Server
	for _, p := range pieces {
		devs := make([]int, p)
		for i := range devs {
			devs[i] = i
		}
		servers = append(servers, topology.Server{Machine: topology.DGX1V(), Devs: devs})
	}
	c, err := topology.NewCluster(servers, nicGbps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterEngineThreePhaseTiming(t *testing.T) {
	c := testCluster(t, []int{3, 5}, 100)
	eng, err := NewClusterEngine(c, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if eng.TotalRanks() != 8 {
		t.Fatalf("total ranks = %d", eng.TotalRanks())
	}
	res, err := eng.Run(Blink, AllReduce, 0, 100<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "3-phase" {
		t.Fatalf("strategy = %q", res.Strategy)
	}
	if res.Phase1 <= 0 || res.Phase2 <= 0 || res.Phase3 <= 0 {
		t.Fatalf("phases = %v %v %v", res.Phase1, res.Phase2, res.Phase3)
	}
	if res.Partitions != 3 {
		t.Fatalf("partitions = %d, want min(3,5)", res.Partitions)
	}
	if got := res.Phase1 + res.Phase2 + res.Phase3; got != res.Seconds {
		t.Fatalf("total %v != phase sum %v", res.Seconds, got)
	}

	flat, err := eng.Run(NCCL, AllReduce, 0, 100<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Strategy != "flat-ring" {
		t.Fatalf("flat strategy = %q", flat.Strategy)
	}
	// The paper's multi-server claim: the three-phase protocol beats the
	// flat cross-server ring, which is bound by min(intra-server PCIe, NIC).
	if res.ThroughputGBs <= flat.ThroughputGBs {
		t.Fatalf("Blink three-phase %.2f GB/s should beat flat ring %.2f GB/s",
			res.ThroughputGBs, flat.ThroughputGBs)
	}
}

func TestClusterEngineWarmDispatchHitsCache(t *testing.T) {
	c := testCluster(t, []int{4, 4}, 40)
	eng, err := NewClusterEngine(c, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Run(Blink, AllReduce, 0, 64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.Misses == 0 || st.Hits != 0 {
		t.Fatalf("after cold dispatch: %+v", st)
	}
	for i := 0; i < 5; i++ {
		warm, err := eng.Run(Blink, AllReduce, 0, 64<<20, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Seconds != cold.Seconds {
			t.Fatalf("replay %d diverged: %v != %v", i, warm.Seconds, cold.Seconds)
		}
	}
	st = eng.CacheStats()
	if st.Hits != 5 {
		t.Fatalf("warm dispatches should hit: %+v", st)
	}
	if st.Entries == 0 {
		t.Fatalf("no resident cluster plans: %+v", st)
	}
}

func TestClusterEngineRunMany(t *testing.T) {
	c := testCluster(t, []int{6, 2}, 100)
	eng, err := NewClusterEngine(c, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int64{25 << 20, 25 << 20, 10 << 20}
	g1, err := eng.RunMany(Blink, AllReduce, 0, sizes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g1.CacheMisses != 2 || g1.CacheHits != 1 {
		t.Fatalf("cold group: hits %d misses %d, want 1/2", g1.CacheHits, g1.CacheMisses)
	}
	g2, err := eng.RunMany(Blink, AllReduce, 0, sizes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.CacheHits != 3 || g2.CacheMisses != 0 {
		t.Fatalf("warm group: hits %d misses %d, want 3/0", g2.CacheHits, g2.CacheMisses)
	}
	if g2.Seconds != g1.Seconds {
		t.Fatalf("warm group diverged: %v != %v", g2.Seconds, g1.Seconds)
	}
}

// TestClusterAllReduceDataExact is the acceptance gate: AllReduceData
// across a 2-server cluster returns elementwise-exact sums on every rank of
// every server, for both backends, cold and warm.
func TestClusterAllReduceDataExact(t *testing.T) {
	for _, pieces := range [][]int{{3, 5}, {4, 4}, {2, 3, 3}} {
		c := testCluster(t, pieces, 100)
		eng, err := NewClusterEngine(c, simgpu.Config{DataMode: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		const n = 1500 // deliberately not a multiple of the partition count
		for _, b := range []Backend{Blink, NCCL} {
			for iter := 0; iter < 2; iter++ { // cold then warm (cached plan)
				inputs := make([][]float32, eng.TotalRanks())
				want := make([]float32, n)
				for r := range inputs {
					inputs[r] = make([]float32, n)
					for i := range inputs[r] {
						inputs[r][i] = float32(rng.Intn(64))
						want[i] += inputs[r][i]
					}
				}
				outs, res, err := eng.AllReduceData(b, inputs, Options{})
				if err != nil {
					t.Fatalf("%v %v iter %d: %v", pieces, b, iter, err)
				}
				if res.Seconds <= 0 {
					t.Fatalf("%v %v: no simulated time", pieces, b)
				}
				for r, out := range outs {
					for i := range want {
						if out[i] != want[i] {
							t.Fatalf("%v %v iter %d: rank %d element %d = %v, want %v",
								pieces, b, iter, r, i, out[i], want[i])
						}
					}
				}
			}
		}
		st := eng.CacheStats()
		if st.Hits == 0 {
			t.Fatalf("%v: warm data dispatches missed the cache: %+v", pieces, st)
		}
	}
}

func TestClusterBroadcastDataExact(t *testing.T) {
	c := testCluster(t, []int{3, 5}, 40)
	eng, err := NewClusterEngine(c, simgpu.Config{DataMode: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1024
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i%97) * 0.5
	}
	// Roots on both servers, including a non-zero local rank.
	for _, root := range []int{0, 2, 3, 7} {
		for _, b := range []Backend{Blink, NCCL} {
			outs, _, err := eng.BroadcastData(b, root, data, Options{})
			if err != nil {
				t.Fatalf("root %d %v: %v", root, b, err)
			}
			for r, out := range outs {
				for i := range data {
					if out[i] != data[i] {
						t.Fatalf("root %d %v: rank %d element %d = %v, want %v",
							root, b, r, i, out[i], data[i])
					}
				}
			}
		}
	}
}

func TestClusterEngineRejectsUnsupported(t *testing.T) {
	c := testCluster(t, []int{3, 5}, 40)
	eng, err := NewClusterEngine(c, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(Blink, Gather, 0, 1<<20, Options{}); err == nil {
		t.Fatal("cluster Gather accepted")
	}
	if _, _, err := eng.AllReduceData(Blink, nil, Options{}); err == nil {
		t.Fatal("data call without data mode accepted")
	}
	if _, err := NewClusterEngine(&topology.Cluster{}, simgpu.Config{}); err == nil {
		t.Fatal("empty cluster accepted")
	}
}
