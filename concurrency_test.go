package blink

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentCollectivesOneComm drives >= 8 concurrent collectives
// through a single Comm. Under `go test -race` this is the gate for the
// concurrency-safe engine: no data races, no divergent timings, and the
// steady state replays cached plans.
func TestConcurrentCollectivesOneComm(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := comm.AllReduce(100 << 20)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 12
	const perWorker = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	times := make([]float64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				res, err := comm.AllReduce(100 << 20)
				if err != nil {
					errs <- err
					return
				}
				times[w] = res.Seconds
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w, s := range times {
		if s != baseline.Seconds {
			t.Fatalf("worker %d saw %.9fs, baseline %.9fs", w, s, baseline.Seconds)
		}
	}
	st := comm.CacheStats()
	if st.Misses != 1 {
		t.Fatalf("one shape should compile once (sequential warm-up): %+v", st)
	}
	if st.Hits != workers*perWorker {
		t.Fatalf("hits = %d, want %d", st.Hits, workers*perWorker)
	}
}

// TestConcurrentMixedOps exercises different ops and payloads in parallel
// through one Comm.
func TestConcurrentMixedOps(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{1, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	ops := []func() (Result, error){
		func() (Result, error) { return comm.AllReduce(64 << 20) },
		func() (Result, error) { return comm.Broadcast(0, 64<<20) },
		func() (Result, error) { return comm.Gather(0, 32<<20) },
		func() (Result, error) { return comm.ReduceScatter(32 << 20) },
		func() (Result, error) { return comm.AllGather(16 << 20) },
		func() (Result, error) { return comm.Reduce(0, 16<<20) },
		func() (Result, error) { return comm.Scatter(0, 64<<20) },
		func() (Result, error) { return comm.AllReduce(8 << 20) },
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(ops))
	for round := 0; round < 2; round++ {
		for _, f := range ops {
			wg.Add(1)
			go func(f func() (Result, error)) {
				defer wg.Done()
				if _, err := f(); err != nil {
					errs <- err
				}
			}(f)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentDataMode runs data-moving collectives from several
// goroutines; the communicator serializes them internally, so results stay
// functionally correct.
func TestConcurrentDataMode(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3}, WithDataMode())
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inputs := make([][]float32, comm.Size())
			var want float32
			for v := range inputs {
				in := make([]float32, n)
				for i := range in {
					in[i] = float32(g + v + 1)
				}
				want += float32(g + v + 1)
				inputs[v] = in
			}
			out, err := comm.AllReduceData(inputs)
			if err != nil {
				errs <- err
				return
			}
			for v := range out {
				for i := range out[v] {
					if out[v][i] != want {
						errs <- fmt.Errorf("goroutine %d rank %d elem %d: got %v, want %v", g, v, i, out[v][i], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAllReduceManyWarm asserts the grouped API reaches steady state after
// one training step.
func TestAllReduceManyWarm(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	buckets := []int64{25 << 20, 25 << 20, 25 << 20, 12 << 20}
	g1, err := comm.AllReduceMany(buckets)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := comm.AllReduceMany(buckets)
	if err != nil {
		t.Fatal(err)
	}
	if g2.CacheMisses != 0 {
		t.Fatalf("second step recompiled: %+v", g2)
	}
	if g2.Seconds != g1.Seconds {
		t.Fatalf("steady-state step time changed: %.9f vs %.9f", g2.Seconds, g1.Seconds)
	}
}

// TestPlanCacheCapacityOption verifies WithPlanCacheCapacity(0) disables
// caching at the public API.
func TestPlanCacheCapacityOption(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{5, 6, 7}, WithPlanCacheCapacity(0))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := comm.AllReduce(8 << 20); err != nil {
			t.Fatal(err)
		}
	}
	st := comm.CacheStats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("cache disabled but stats = %+v", st)
	}
}

// TestSharedCacheAcrossComms verifies two communicators over the same
// allocation share compiled plans through WithPlanCache.
func TestSharedCacheAcrossComms(t *testing.T) {
	pc := NewPlanCache(32)
	c1, err := NewComm(DGX1V(), []int{0, 1, 2, 3}, WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewComm(DGX1V(), []int{0, 1, 2, 3}, WithPlanCache(pc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.AllReduce(16 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AllReduce(16 << 20); err != nil {
		t.Fatal(err)
	}
	st := pc.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("shared cache stats = %+v, want 1 hit / 1 miss", st)
	}
}
