package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"blink/internal/simgpu"
	"blink/internal/topology"
)

// Property: HybridSplit always conserves bytes, stays aligned, and the
// PCIe share never exceeds the bandwidth-proportional share.
func TestHybridSplitProperties(t *testing.T) {
	f := func(total uint32, bwP, bwN uint16, tdpaMs uint8) bool {
		tot := int64(total)%(2<<30) + 8
		tot -= tot % 4
		bp := 0.5 + float64(bwP%64)
		bn := 0.5 + float64(bwN%64)
		tdpa := float64(tdpaMs%50) / 1e3
		p, n := HybridSplit(tot, bp, bn, tdpa)
		if p+n != tot || p < 0 || n < 0 || p%4 != 0 {
			return false
		}
		// With Tdpa = 0 the split is exactly bandwidth-proportional (up to
		// alignment); with Tdpa > 0 PCIe gets no more than that.
		maxP := int64(float64(tot) * bp / (bp + bn))
		return p <= maxP+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitRegions covers the payload exactly: regions are
// contiguous, non-overlapping and sum to the total.
func TestSplitRegionsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		nTrees := 1 + rng.Intn(8)
		trees := make([]Tree, nTrees)
		for i := range trees {
			trees[i] = Tree{Weight: 0.01 + rng.Float64()}
		}
		total := 1 + rng.Intn(1<<20)
		base := rng.Intn(1000)
		chunk := int64(4 * (1 + rng.Intn(4096)))
		regions := splitRegions(trees, base, total, chunk)
		off := base
		covered := 0
		for i, r := range regions {
			if r.off != off {
				t.Fatalf("trial %d: region %d starts at %d, want %d", trial, i, r.off, off)
			}
			if r.n < 0 {
				t.Fatalf("trial %d: negative region", trial)
			}
			off += r.n
			covered += r.n
			// Chunk spans must tile the region exactly.
			tiled := 0
			for k := 0; k < r.chunks; k++ {
				_, n := r.chunkSpan(k, chunk)
				if n <= 0 {
					t.Fatalf("trial %d: empty chunk span", trial)
				}
				tiled += n
			}
			if tiled != r.n {
				t.Fatalf("trial %d: chunks tile %d of %d floats", trial, tiled, r.n)
			}
		}
		if covered != total {
			t.Fatalf("trial %d: regions cover %d of %d", trial, covered, total)
		}
	}
}

// Property: MIAD never emits a chunk below its floor and always terminates.
func TestMIADTerminationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tuner := NewMIADTuner(int64(1+rng.Intn(16)) << 20)
		for i := 0; i < 64; i++ {
			if tuner.Steady() {
				return true
			}
			tuner.Observe(rng.Float64() * 100)
			if tuner.Chunk() < tuner.MinChunkBytes {
				return false
			}
		}
		// Random feedback may legitimately oscillate within 64 steps only
		// if the tuner is still in its increase phase; chunk growth is
		// geometric so it cannot run forever without hitting steady state
		// via the decline path. Accept but require a sane chunk.
		return tuner.Chunk() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every broadcast plan moves exactly (n-1) * chunks transfers per
// tree (one delivery per non-root vertex per chunk) on point-to-point
// fabrics.
func TestBroadcastPlanOpCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		devsAll := rng.Perm(8)
		k := 3 + rng.Intn(6)
		devs := append([]int(nil), devsAll[:k]...)
		ind, err := topology.DGX1V().Induce(devs)
		if err != nil {
			t.Fatal(err)
		}
		g := ind.GPUGraph()
		if !g.Connected() {
			continue
		}
		p, err := GenerateTrees(g, 0, PackOptions{}, MinimizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		f := simgpu.NewFabric(ind, g, simgpu.Config{})
		chunk := int64(1+rng.Intn(8)) << 20
		bytes := int64(16+rng.Intn(128)) << 20
		plan, err := BuildBroadcastPlan(f, p, bytes, PlanOptions{ChunkBytes: chunk, NoStreamReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		wantOps := 0
		regions := splitRegions(p.Trees, 0, int(bytes/4), chunk)
		for _, r := range regions {
			wantOps += r.chunks * (g.N - 1)
		}
		if len(plan.Ops) != wantOps {
			t.Fatalf("trial %d: ops %d, want %d", trial, len(plan.Ops), wantOps)
		}
	}
}

// Property: the packing rate equals the bound on every DGX-1V allocation
// after the exact fallback (integer capacities).
func TestGenerateTreesHitsIntegralBound(t *testing.T) {
	v := topology.DGX1V()
	for _, devs := range topology.Fig15AllocationsDGX1V {
		ind, err := v.Induce(devs)
		if err != nil {
			t.Fatal(err)
		}
		g := ind.GPUGraph()
		for root := 0; root < g.N; root++ {
			p, err := GenerateTrees(g, root, PackOptions{}, MinimizeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			intBound := float64(int(p.Bound + 1e-9))
			if p.Rate < intBound-1e-9 {
				t.Fatalf("alloc %v root %d: rate %v below integral bound %v", devs, root, p.Rate, intBound)
			}
		}
	}
}
