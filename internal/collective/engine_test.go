package collective

import (
	"testing"

	"blink/internal/simgpu"
	"blink/internal/topology"
)

func newEng(t *testing.T, devs []int) *Engine {
	t.Helper()
	e, err := NewEngine(topology.DGX1V(), devs, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBlinkBeatsNCCLPartialConnectivity(t *testing.T) {
	// Figure 2b: GPUs {0,1,4} have no NVLink ring; NCCL drops to PCIe while
	// Blink packs the available NVLinks (paper: 26.4 vs 4.8 GB/s).
	e := newEng(t, []int{0, 1, 4})
	nccl, err := e.Run(NCCL, Broadcast, 0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blink, err := e.Run(Blink, Broadcast, 0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if nccl.Strategy != "pcie-ring" {
		t.Fatalf("NCCL strategy = %q, want pcie-ring", nccl.Strategy)
	}
	if nccl.ThroughputGBs > 8 {
		t.Fatalf("NCCL PCIe broadcast = %.1f GB/s, want ~5", nccl.ThroughputGBs)
	}
	if blink.ThroughputGBs < 3*nccl.ThroughputGBs {
		t.Fatalf("Blink %.1f GB/s should be >=3x NCCL %.1f (paper ~5.5x)",
			blink.ThroughputGBs, nccl.ThroughputGBs)
	}
}

func TestBlinkVsNCCLFullAllocation(t *testing.T) {
	// On the fully connected 8-GPU DGX-1V NCCL builds full rings; Blink's
	// edge is modest (paper: 3-5 GB/s from chunked transfers).
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	nccl, err := e.Run(NCCL, Broadcast, 0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	blink, err := e.Run(Blink, Broadcast, 0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if blink.ThroughputGBs < nccl.ThroughputGBs {
		t.Fatalf("Blink %.1f < NCCL %.1f on full allocation", blink.ThroughputGBs, nccl.ThroughputGBs)
	}
	if blink.ThroughputGBs > 2.0*nccl.ThroughputGBs {
		t.Fatalf("Blink %.1f vs NCCL %.1f: gap too large for a full ring allocation",
			blink.ThroughputGBs, nccl.ThroughputGBs)
	}
}

func TestAllReduceBothBackends(t *testing.T) {
	e := newEng(t, []int{1, 4, 5, 6, 7})
	for _, b := range []Backend{Blink, NCCL} {
		r, err := e.Run(b, AllReduce, 0, 100<<20, Options{})
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if r.ThroughputGBs <= 0 {
			t.Fatalf("%v allreduce throughput = %v", b, r.ThroughputGBs)
		}
	}
}

func TestGatherAndVariants(t *testing.T) {
	e := newEng(t, []int{5, 6, 7})
	for _, op := range []Op{Gather, AllGather, ReduceScatter} {
		r, err := e.Run(Blink, op, 0, 64<<20, Options{})
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if r.Seconds <= 0 {
			t.Fatalf("%v: no time elapsed", op)
		}
	}
}

func TestDGX2Engine(t *testing.T) {
	e, err := NewEngine(topology.DGX2(), nil, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Switched() {
		t.Fatal("DGX-2 engine should be switched")
	}
	small, err := e.Run(NCCL, AllReduce, 0, 16<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Strategy != "db-tree" {
		t.Fatalf("small NCCL allreduce strategy = %q, want db-tree", small.Strategy)
	}
	large, err := e.Run(NCCL, AllReduce, 0, 256<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if large.Strategy != "ring" {
		t.Fatalf("large NCCL allreduce strategy = %q, want ring", large.Strategy)
	}
	// Figure 20: Blink's one-hop trees have much lower latency at small
	// sizes.
	blinkSmall, err := e.Run(Blink, AllReduce, 0, 16<<10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if blinkSmall.Seconds >= small.Seconds {
		t.Fatalf("Blink small latency %.2fus not below NCCL %.2fus",
			blinkSmall.Seconds*1e6, small.Seconds*1e6)
	}
	ratio := small.Seconds / blinkSmall.Seconds
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("small-size latency ratio = %.2f, paper reports up to 3.32x", ratio)
	}
	// Large sizes converge (both bound by attach bandwidth).
	blinkLarge, err := e.Run(Blink, AllReduce, 0, 256<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := blinkLarge.ThroughputGBs / large.ThroughputGBs
	if r < 0.6 || r > 2.5 {
		t.Fatalf("large-size throughput ratio %.2f outside convergence band", r)
	}
}

func TestHybridBroadcastViaEngine(t *testing.T) {
	e := newEng(t, []int{0, 1, 2, 3})
	plain, err := e.Run(Blink, Broadcast, 0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hy, h, err := e.RunHybridBroadcast(0, 500<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.PCIeBytes <= 0 {
		t.Fatal("hybrid assigned nothing to PCIe")
	}
	if hy.ThroughputGBs <= plain.ThroughputGBs {
		t.Fatalf("hybrid %.1f not above NVLink-only %.1f", hy.ThroughputGBs, plain.ThroughputGBs)
	}
}

func TestHybridRejectedOnSwitch(t *testing.T) {
	e, err := NewEngine(topology.DGX2(), nil, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunHybridBroadcast(0, 1<<20, Options{}); err == nil {
		t.Fatal("hybrid on DGX-2 should be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	e := newEng(t, []int{5, 6, 7})
	if _, err := e.Run(Blink, Broadcast, 0, 2, Options{}); err == nil {
		t.Fatal("tiny payload accepted")
	}
	if _, err := e.Run(Blink, Broadcast, 0, 1<<20, Options{Hybrid: true}); err == nil {
		t.Fatal("hybrid flag through Run should error for broadcast")
	}
}

func TestStringers(t *testing.T) {
	if Blink.String() != "Blink" || NCCL.String() != "NCCL" {
		t.Fatal("backend names")
	}
	names := []string{"Broadcast", "Gather", "AllReduce", "AllGather", "ReduceScatter"}
	for i, want := range names {
		if Op(i).String() != want {
			t.Fatalf("op %d name %q", i, Op(i).String())
		}
	}
}

func TestChunkFor(t *testing.T) {
	if c := chunkFor(1<<30, 0); c != 2<<20 {
		t.Fatalf("1GB chunk = %d", c)
	}
	if c := chunkFor(1024, 0); c < 4 || c%4 != 0 {
		t.Fatalf("small chunk = %d", c)
	}
	if c := chunkFor(1<<30, 12345); c != 12345 {
		t.Fatalf("override ignored: %d", c)
	}
}

func TestReduceOp(t *testing.T) {
	e := newEng(t, []int{2, 3, 6, 7})
	r, err := e.Run(Blink, Reduce, 0, 64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 {
		t.Fatal("reduce took no time")
	}
	// Reduce is one direction of AllReduce: roughly twice the throughput.
	ar, err := e.Run(Blink, AllReduce, 0, 64<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := r.ThroughputGBs / ar.ThroughputGBs
	if ratio < 1.2 || ratio > 3.0 {
		t.Fatalf("reduce/allreduce throughput ratio = %.2f, want ~2", ratio)
	}
	if Reduce.String() != "Reduce" {
		t.Fatal("Reduce name wrong")
	}
}

func TestFabricForSelection(t *testing.T) {
	// Connected allocation: both backends move data on the NVLink plane.
	conn := newEng(t, []int{5, 6, 7})
	if conn.FabricFor(Blink) != conn.FabricFor(NCCL) {
		t.Fatal("connected allocation should share the NVLink fabric")
	}
	// NVLink-disconnected: both fall to the PCIe plane.
	e, err := NewEngine(topology.DGX1V(), []int{0, 1, 6}, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.NVLinkConnected() {
		t.Fatal("{0,1,6} should be NVLink-disconnected")
	}
	if e.FabricFor(Blink) != e.FabricFor(NCCL) {
		t.Fatal("disconnected allocation should use the PCIe fabric for both")
	}
	// Connected but ring-less: Blink on NVLink, NCCL on PCIe.
	mix, err := NewEngine(topology.DGX1V(), []int{0, 1, 4}, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mix.FabricFor(Blink) == mix.FabricFor(NCCL) {
		t.Fatal("{0,1,4}: Blink should use NVLink while NCCL falls to PCIe")
	}
}

func TestPackingAccessor(t *testing.T) {
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	p, err := e.Packing(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Root != 2 || p.Rate != 6 {
		t.Fatalf("packing root %d rate %v", p.Root, p.Rate)
	}
	// Disconnected allocation exposes the PCIe packing.
	d, err := NewEngine(topology.DGX1V(), []int{0, 1, 6}, simgpu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := d.Packing(0)
	if err != nil {
		t.Fatal(err)
	}
	if pp.Rate <= 0 || pp.Rate > 1 {
		t.Fatalf("PCIe packing rate = %v, want fractional", pp.Rate)
	}
}

func TestScatterOp(t *testing.T) {
	e := newEng(t, []int{0, 1, 2, 3, 4, 5, 6, 7})
	for _, b := range []Backend{Blink, NCCL} {
		r, err := e.Run(b, Scatter, 0, 128<<20, Options{})
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if r.Seconds <= 0 {
			t.Fatalf("%v scatter took no time", b)
		}
	}
	// Scatter moves strictly less data over the root's links than
	// Broadcast, so it should be at least as fast.
	sc, err := e.Run(Blink, Scatter, 0, 128<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := e.Run(Blink, Broadcast, 0, 128<<20, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seconds > bc.Seconds*1.05 {
		t.Fatalf("scatter %.4f slower than broadcast %.4f", sc.Seconds, bc.Seconds)
	}
	if Scatter.String() != "Scatter" {
		t.Fatal("Scatter name wrong")
	}
}
