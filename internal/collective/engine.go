// Package collective is the user-facing runtime of the reproduction: it
// wires topology probing, tree generation, schedule compilation and the
// simulated fabric into NCCL-style collective calls, for both the Blink
// backend (packed spanning trees, one-hop trees, hybrid transfers) and the
// NCCL baseline (NVLink rings with PCIe fallback, double binary trees).
package collective

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blink/internal/core"
	"blink/internal/graph"
	"blink/internal/obs"
	"blink/internal/ring"
	"blink/internal/simgpu"
	"blink/internal/topology"
)

// Backend selects the scheduling strategy.
type Backend int

const (
	// Blink packs spanning trees (§3) and generates chunked pipelined
	// schedules (§4).
	Blink Backend = iota
	// NCCL models the ring/double-binary-tree baseline.
	NCCL
)

// String names the backend.
func (b Backend) String() string {
	if b == Blink {
		return "Blink"
	}
	return "NCCL"
}

// Op identifies a collective primitive.
type Op int

const (
	Broadcast Op = iota
	Gather
	AllReduce
	AllGather
	ReduceScatter
	Reduce
	Scatter
	// AllToAll exchanges a distinct bytes/N shard between every rank pair.
	AllToAll
	// SendRecv forwards one payload along an ordered chain of ranks
	// (Options.Chain), the building block of pipeline parallelism.
	SendRecv
	// NeighborExchange sends each rank's payload to its listed neighbors
	// (Options.Neighbors), the halo-exchange pattern.
	NeighborExchange
)

// String names the op.
func (o Op) String() string {
	switch o {
	case Broadcast:
		return "Broadcast"
	case Gather:
		return "Gather"
	case AllReduce:
		return "AllReduce"
	case AllGather:
		return "AllGather"
	case ReduceScatter:
		return "ReduceScatter"
	case Reduce:
		return "Reduce"
	case Scatter:
		return "Scatter"
	case AllToAll:
		return "AllToAll"
	case SendRecv:
		return "SendRecv"
	case NeighborExchange:
		return "NeighborExchange"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// DBTreeThresholdBytes is the payload size below which NCCL 2.4 prefers
// double binary trees over rings on switch fabrics.
const DBTreeThresholdBytes = 512 << 10

// Result reports one collective execution.
type Result struct {
	Seconds       float64
	Bytes         int64
	ThroughputGBs float64
	// Strategy describes what was actually scheduled ("trees", "rings",
	// "pcie-ring", "one-hop", "db-tree", "hybrid").
	Strategy string
}

// Options tunes a collective call.
type Options struct {
	// ChunkBytes overrides the chunk heuristic (0 = auto).
	ChunkBytes int64
	// Hybrid adds PCIe trees alongside NVLink for Blink broadcasts (§3.4).
	Hybrid bool
	// DataMode moves real data (functional verification).
	DataMode bool
	// Chain is the ordered rank sequence of a SendRecv pipeline (required
	// for op SendRecv, ignored otherwise).
	Chain []int
	// Neighbors is the per-rank send list of a NeighborExchange (required
	// for op NeighborExchange, ignored otherwise): rank v sends its payload
	// to every rank in Neighbors[v].
	Neighbors [][]int
	// Buffers is the per-call buffer arena a data-mode dispatch executes
	// against: inputs are installed into it before the call and results read
	// from it after. It is not part of the plan-cache key — the same frozen
	// schedule serves every arena. Nil with DataMode falls back to a
	// throwaway arena (timing only).
	Buffers *simgpu.BufferSet
	// Class is the QoS class the dispatch's bytes count against in the
	// async stream scheduler's per-class admission window. The zero value
	// is BulkGradient, so untagged calls keep the legacy semantics. Not
	// part of the plan-cache key: the same frozen schedule serves every
	// class.
	Class Class
	// Tenant attributes the dispatch to a tenant for cache accounting and
	// cache-partition fairness (set by the tenant entry points; nil for
	// untenanted calls). Not part of the plan-cache key.
	Tenant *Tenant
}

// engineState is everything an Engine derives from its topology: fabrics,
// lazily built packings and rings, and the schedule-cache fingerprint. The
// whole bundle swaps atomically on Reconfigure, so dispatches in flight on
// the old state finish against a consistent snapshot while new dispatches
// compile against the post-fault fabric.
type engineState struct {
	topo *topology.Topology
	// machine/devs are what the state was probed from, kept so a
	// reconfiguration (a derived machine after a link fault, or a shrunken
	// device set after an eviction) can default the unchanged half.
	machine *topology.Topology
	devs    []int

	// mu guards the lazily built scheduling state below (packing slot maps,
	// rings). Concurrent cold calls for one root still do the expensive
	// packing work exactly once — that dedup moved to the per-root slot
	// locks in compile.go so it no longer serializes unrelated roots.
	mu sync.Mutex

	// Point-to-point state (DGX-1 class). Packings live in per-root slots
	// with entry-level locks (compile.go), so st.mu is held only for map
	// access and cold compiles for distinct roots run in parallel.
	nvlFabric  *simgpu.Fabric
	pcieFabric *simgpu.Fabric
	packings   map[int]*packEntry // per root, NVLink
	pciePacks  map[int]*packEntry // per root, PCIe hub
	rings      []ring.Ring
	ringsDone  bool

	// Switch state (DGX-2 class).
	switchFabric *simgpu.Fabric
	logical      *graph.Graph
	oneHop       []*core.Packing

	// fingerprint is the induced topology's schedule-cache identity.
	fingerprint string
	// nvlConnected caches whether the allocation's NVLink subgraph is
	// connected (switch fabrics always are).
	nvlConnected bool
}

// Engine is a collective runtime bound to one induced topology.
//
// An Engine is safe for concurrent use: any number of goroutines may call
// Run / RunMany / Packing simultaneously — including concurrently with
// Reconfigure, which swaps the engine onto a new (typically degraded)
// topology. All topology-derived state lives in an immutable-once-published
// engineState behind an atomic pointer; compiled schedules live in an LRU
// PlanCache as immutable FrozenPlans that replay without mutation. Data-
// mode dispatches run fully in parallel too: each call executes against its
// own simgpu.BufferSet (Options.Buffers), so no execution state is shared
// between calls.
type Engine struct {
	Cfg simgpu.Config

	// st is the current topology-derived state; Load it once per dispatch.
	st atomic.Pointer[engineState]

	// reconfigMu serializes reconfigurations: each one folds its change
	// into the state the previous one published, so concurrent faults
	// (link down + eviction) compose instead of the last write silently
	// discarding the others. Dispatches never take this lock.
	reconfigMu sync.Mutex

	// id uniquely identifies this engine; data-mode plan keys carry it
	// because their Exec closures are bound to this engine's fabrics.
	id uint64
	// cfgKey is the normalized timing model, part of every plan key.
	cfgKey simgpu.Config
	// cache holds compiled schedules; replaceable via SetPlanCache so many
	// engines can share one cache.
	cache *PlanCache
	// svc is the optional remote planning service (blinkd) consulted after
	// both cache tiers miss and before compiling locally; a fetch or decode
	// failure falls back to the local compile, so the service can only ever
	// remove latency, not availability.
	svc PlanService

	// async is the lazily started stream scheduler behind RunAsync.
	async asyncRuntime

	// qos is the lazily started multi-tenant lane scheduler behind
	// RunAsyncTenant; tenantCount sizes the plan cache's per-owner fair
	// share.
	qos         qosRuntime
	tenantCount atomic.Int64

	// obsReg is the engine's metrics registry: cache, stream and dispatch
	// metrics all land here. It exists from construction — an unread
	// registry costs a few atomic adds per dispatch — and is exposed via
	// Metrics() for export.
	obsReg *obs.Registry
	// tl is the optional per-op span timeline, nil until EnableTimeline;
	// dispatch paths go through Timeline.Begin, which is nil-safe.
	tl atomic.Pointer[obs.Timeline]
	// Registry-resolved dispatch metric handles (hot path: pure atomics).
	mCompiles, mReplays, mReplans *obs.Counter
	mReplanSeconds                *obs.Histogram

	// Staged-compile state (compile.go): the exact and approximate planner
	// pipelines, the fast-path / incremental-repair knobs, and the bounded
	// background-refinement pool.
	exactPipe  *core.PlannerPipeline
	approxPipe *core.PlannerPipeline
	fastPath   atomic.Bool
	repairOff  atomic.Bool
	refineWG   sync.WaitGroup
	refineSem  chan struct{}
	// Fast-path, refinement-swap and repair-outcome counters.
	mFastCompiles, mRefineSwaps *obs.Counter
	mRepairs, mRepairFallbacks  *obs.Counter
	// Remote-planner outcome counters.
	mServiceHits, mServiceErrors *obs.Counter
}

// engineIDs hands every engine a distinct nonzero identity.
var engineIDs atomic.Uint64

// newEngineState probes the machine for the allocated devices and builds
// the full topology-derived state bundle.
func newEngineState(machine *topology.Topology, devs []int, cfg simgpu.Config) (*engineState, error) {
	st := &engineState{machine: machine, devs: append([]int(nil), devs...)}
	if machine.Kind == topology.KindDGX2 {
		t, lg, packs, fab, err := core.NewDGX2Runtime(cfg)
		if err != nil {
			return nil, err
		}
		st.topo = t
		st.logical = lg
		st.oneHop = packs
		st.switchFabric = fab
		st.fingerprint = t.Fingerprint()
		st.nvlConnected = true
		return st, nil
	}
	ind, err := machine.Induce(devs)
	if err != nil {
		return nil, err
	}
	st.topo = ind
	st.nvlFabric = simgpu.NewFabric(ind, ind.GPUGraph(), cfg)
	st.pcieFabric = simgpu.NewFabric(ind, ind.PCIeGraph(), cfg)
	st.packings = map[int]*packEntry{}
	st.pciePacks = map[int]*packEntry{}
	st.fingerprint = ind.Fingerprint()
	st.nvlConnected = ind.GPUGraph().Connected()
	return st, nil
}

// NewEngine probes the machine for the allocated devices and prepares a
// runtime. For switch topologies devs must cover the full machine (partial
// DGX-2 allocations see a uniform fabric anyway).
func NewEngine(machine *topology.Topology, devs []int, cfg simgpu.Config) (*Engine, error) {
	e := &Engine{
		Cfg:    cfg,
		cache:  NewPlanCache(DefaultPlanCacheCapacity),
		id:     engineIDs.Add(1),
		cfgKey: cfg.Normalized(),
		obsReg: obs.NewRegistry(),
		// Background refinements are strictly lower priority than dispatch
		// work; two concurrent exact compiles keep the pipeline fed without
		// starving foreground packing of cores.
		refineSem: make(chan struct{}, 2),
	}
	e.resolveMetrics()
	e.exactPipe = core.NewPlannerPipeline(core.PipelineOptions{OnStage: e.observeStage})
	e.approxPipe = core.NewPlannerPipeline(core.PipelineOptions{Approx: true, OnStage: e.observeStage})
	e.cache.Instrument(e.obsReg)
	st, err := newEngineState(machine, devs, cfg)
	if err != nil {
		return nil, err
	}
	e.st.Store(st)
	return e, nil
}

// resolveMetrics binds the engine's dispatch metric handles to its registry.
func (e *Engine) resolveMetrics() {
	e.mCompiles = e.obsReg.Counter("blink_plan_compiles_total")
	e.mReplays = e.obsReg.Counter("blink_plan_replays_total")
	e.mReplans = e.obsReg.Counter("blink_replans_total")
	e.mReplanSeconds = e.obsReg.Histogram("blink_replan_seconds", nil)
	e.mFastCompiles = e.obsReg.Counter("blink_fastpath_compiles_total")
	e.mRefineSwaps = e.obsReg.Counter("blink_refine_swaps_total")
	e.mRepairs = e.obsReg.Counter("blink_repair_incremental_total")
	e.mRepairFallbacks = e.obsReg.Counter("blink_repair_fallback_total")
	e.mServiceHits = e.obsReg.Counter("blink_plan_service_hits_total")
	e.mServiceErrors = e.obsReg.Counter("blink_plan_service_errors_total")
}

// Metrics returns the engine's metrics registry: plan-cache activity,
// compile/replay counters, replan latency, async stream gauges and per-op
// simulated-makespan histograms, exportable via Snapshot/WritePrometheus.
func (e *Engine) Metrics() *obs.Registry { return e.obsReg }

// EnableTimeline switches on per-op span recording and returns the
// timeline. Idempotent: later calls return the same timeline. Dispatches
// before the first call are simply not recorded.
func (e *Engine) EnableTimeline() *obs.Timeline {
	if t := e.tl.Load(); t != nil {
		return t
	}
	e.tl.CompareAndSwap(nil, obs.NewTimeline())
	return e.tl.Load()
}

// Timeline returns the engine's span timeline (nil unless EnableTimeline
// was called).
func (e *Engine) Timeline() *obs.Timeline { return e.tl.Load() }

// timeline is the internal accessor dispatch paths use; a nil result is
// fine (Timeline.Begin is nil-safe and returns a nil no-op recorder).
func (e *Engine) timeline() *obs.Timeline { return e.tl.Load() }

// opHist resolves the per-op simulated-makespan histogram.
func (e *Engine) opHist(op Op) *obs.Histogram {
	return e.obsReg.Histogram(`blink_op_sim_seconds{op="`+op.String()+`"}`, nil)
}

// Reconfigure re-probes and swaps the engine onto a new allocation — the
// fault-adaptation path: after a link fails or degrades, pass the derived
// machine (topology.WithoutLink / WithLinkUnits) and nil devs to keep the
// allocation; after an eviction, pass a nil machine and the shrunken device
// set. Dispatches already in flight finish against the old state; every
// later dispatch compiles schedules for the new fabric. Plans cached under
// the old fingerprint are dropped from the plan cache so dead topologies
// stop pinning LRU slots (in a shared cache this also costs other engines
// still on that fingerprint a recompile, never correctness).
//
// Reconfigure is atomic: on error (disconnected PCIe plane, unknown device)
// the engine keeps its current state. Concurrent reconfigurations
// serialize, each folding its change into the previously published state.
func (e *Engine) Reconfigure(machine *topology.Topology, devs []int) error {
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	return e.reconfigureLocked(machine, devs)
}

// ReconfigureExclude drops the listed physical devices from the allocation
// and re-probes the current machine over the survivors — the GPU-eviction
// path. The read-modify-write on the device set happens under the
// reconfiguration lock, so concurrent evictions and link faults compose.
func (e *Engine) ReconfigureExclude(evicted []int) error {
	if len(evicted) == 0 {
		return fmt.Errorf("collective: no devices to exclude")
	}
	e.reconfigMu.Lock()
	defer e.reconfigMu.Unlock()
	gone := map[int]bool{}
	for _, d := range evicted {
		gone[d] = true
	}
	var keep []int
	for _, d := range e.st.Load().devs {
		if gone[d] {
			delete(gone, d)
		} else {
			keep = append(keep, d)
		}
	}
	for d := range gone {
		return fmt.Errorf("collective: device %d not in the allocation", d)
	}
	if len(keep) < 2 {
		return fmt.Errorf("collective: eviction would leave %d device(s); a communicator needs at least 2", len(keep))
	}
	return e.reconfigureLocked(nil, keep)
}

// reconfigureLocked builds and publishes the post-fault state; the caller
// holds reconfigMu.
func (e *Engine) reconfigureLocked(machine *topology.Topology, devs []int) error {
	start := time.Now()
	old := e.st.Load()
	if machine == nil {
		machine = old.machine
	}
	if devs == nil {
		devs = old.devs
	}
	if old.switchFabric != nil || machine.Kind == topology.KindDGX2 {
		return fmt.Errorf("collective: switch-fabric engines do not support reconfiguration")
	}
	st, err := newEngineState(machine, devs, e.Cfg)
	if err != nil {
		return err
	}
	if !e.repairOff.Load() {
		// Seed the new state with incrementally repaired packings before it
		// becomes visible: roots the fault barely touched replan in
		// microseconds instead of recompiling from scratch (compile.go).
		e.repairPackings(old, st)
	}
	e.st.Store(st)
	if st.fingerprint != old.fingerprint {
		e.cache.InvalidateFingerprint(old.fingerprint)
	}
	e.mReplans.Inc()
	e.mReplanSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Topo returns the currently induced topology. After a Reconfigure the
// returned snapshot reflects the post-fault allocation.
func (e *Engine) Topo() *topology.Topology { return e.st.Load().topo }

// Machine returns the base machine the current allocation was probed from.
func (e *Engine) Machine() *topology.Topology { return e.st.Load().machine }

// AllocatedDevs returns the physical device IDs of the current allocation.
func (e *Engine) AllocatedDevs() []int { return append([]int(nil), e.st.Load().devs...) }

// SetPlanCache replaces the engine's plan cache, e.g. with one shared by
// several communicators over the same machine (keys carry the topology
// fingerprint, so entries never collide across allocations). A nil cache
// resets to a private cache of the default capacity.
func (e *Engine) SetPlanCache(c *PlanCache) {
	if c == nil {
		c = NewPlanCache(DefaultPlanCacheCapacity)
	}
	e.cache = c
}

// PlanCacheHandle returns the engine's plan cache (for sharing or
// inspection).
func (e *Engine) PlanCacheHandle() *PlanCache { return e.cache }

// CacheStats snapshots the engine's plan-cache counters.
func (e *Engine) CacheStats() CacheStats { return e.cache.Stats() }

// Fingerprint returns the induced topology's schedule-cache identity.
func (e *Engine) Fingerprint() string { return e.st.Load().fingerprint }

// Switched reports whether the engine runs on a switch fabric.
func (e *Engine) Switched() bool { return e.st.Load().switchFabric != nil }

// NVLinkConnected reports whether the allocation's NVLink subgraph is
// connected (Blink needs this to build NVLink trees; NCCL needs a full
// ring, which is stricter).
func (e *Engine) NVLinkConnected() bool { return e.st.Load().nvlConnected }

// ncclRings returns (caching) the NVLink rings NCCL would build.
func (st *engineState) ncclRings() []ring.Ring {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.ringsDone {
		st.rings = ring.FindRings(st.topo.GPUGraph())
		st.ringsDone = true
	}
	return st.rings
}

// chunkFor picks a pipelining granularity: large payloads use 4 MiB, small
// ones shrink so multi-hop pipelines still overlap.
func chunkFor(bytes int64, override int64) int64 {
	if override > 0 {
		return override
	}
	c := bytes / 16
	if c > 2<<20 {
		c = 2 << 20
	}
	if c < 4 {
		c = 4
	}
	if r := c % 4; r != 0 {
		c += 4 - r
	}
	return c
}

// Run executes one collective and returns its simulated timing.
//
// The first call for a given (op, root, bytes, chunk) key compiles the full
// TreeGen -> minimize -> CodeGen pipeline and freezes the result into the
// plan cache; subsequent calls replay the frozen schedule, which is the
// whole point of Blink's generate-once / run-thousands-of-iterations
// design. Run is safe for concurrent use.
func (e *Engine) Run(b Backend, op Op, root int, bytes int64, opts Options) (Result, error) {
	res, _, err := e.runCounted(e.st.Load(), b, op, root, bytes, opts)
	return res, err
}

// Snapshot pins the engine's current topology state so a caller can run a
// consistent multi-step sequence — validate inputs against the rank count,
// stage buffers, dispatch, read results — that a concurrent Reconfigure
// cannot split across pre- and post-fault topologies.
type Snapshot struct {
	e  *Engine
	st *engineState
}

// Snapshot captures the engine's current topology state.
func (e *Engine) Snapshot() Snapshot { return Snapshot{e: e, st: e.st.Load()} }

// Topo returns the snapshot's induced topology.
func (s Snapshot) Topo() *topology.Topology { return s.st.topo }

// Run executes one collective against the snapshot's topology, regardless
// of any reconfiguration that happened after the snapshot was taken.
func (s Snapshot) Run(b Backend, op Op, root int, bytes int64, opts Options) (Result, error) {
	res, _, err := s.e.runCounted(s.st, b, op, root, bytes, opts)
	return res, err
}

// runCounted is Run plus exact cache attribution: hit reports whether this
// call replayed a cached plan (true) or compiled one (false). The whole
// dispatch runs against one state snapshot, so a concurrent Reconfigure
// never mixes pre- and post-fault scheduling state within a call.
// Synchronous dispatches record spans too (stream -1) when the timeline is
// enabled.
func (e *Engine) runCounted(st *engineState, b Backend, op Op, root int, bytes int64, opts Options) (Result, bool, error) {
	rec := e.timeline().Begin(op.String(), b.String(), -1, bytes)
	return e.runObserved(st, b, op, root, bytes, opts, nil, rec)
}

// runObserved is the fully instrumented dispatch: an optional
// chunk-granular progress hook threaded into the frozen plan's replay (nil
// for synchronous calls; async handles use it to publish progress and yield
// between chunks) plus an optional span recorder (nil when no timeline is
// enabled — every recorder method is nil-safe). It owns the span's
// lifecycle from dispatch to completion and the engine's compile/replay and
// per-op makespan metrics.
func (e *Engine) runObserved(st *engineState, b Backend, op Op, root int, bytes int64, opts Options, hook core.ReplayHook, rec *obs.SpanRecorder) (Result, bool, error) {
	rec.Dispatch()
	cp, hit, err := e.lookupOrCompile(st, b, op, root, bytes, opts)
	if err != nil {
		// A failed lookup still counts as a miss so a tenant's ledger keeps
		// Lookups == Hits + Misses exact.
		opts.Tenant.noteLookup(false)
		rec.Complete("", false, 0, err)
		return Result{}, false, err
	}
	opts.Tenant.noteLookup(hit)
	if hit {
		e.mReplays.Inc()
	} else {
		e.mCompiles.Inc()
	}
	res, err := cp.Plan.ReplayDataHooked(opts.Buffers, chainHooks(hook, rec.ChunkHook()))
	if err != nil {
		rec.Complete(cp.Strategy, hit, 0, err)
		return Result{}, hit, err
	}
	e.opHist(op).Observe(res.Makespan)
	rec.Complete(cp.Strategy, hit, res.Makespan, nil)
	out := Result{Seconds: res.Makespan, Bytes: bytes, Strategy: cp.Strategy}
	if res.Makespan > 0 {
		out.ThroughputGBs = float64(bytes) / res.Makespan / 1e9
	}
	return out, hit, nil
}

// chainHooks composes two replay hooks into one (either may be nil).
func chainHooks(a, b core.ReplayHook) core.ReplayHook {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func(done, total int) {
		a(done, total)
		b(done, total)
	}
}

// lookupOrCompile resolves the plan-cache key for the call and returns the
// cached schedule plus whether this call hit the cache, compiling and
// inserting the plan on a miss. Two goroutines missing on the same key may
// both compile; both results are identical and the second Put simply
// replaces the first, so correctness is unaffected.
func (e *Engine) lookupOrCompile(st *engineState, b Backend, op Op, root int, bytes int64, opts Options) (*CachedPlan, bool, error) {
	if bytes < 4 {
		return nil, false, fmt.Errorf("collective: payload %d too small", bytes)
	}
	// A root that was valid at construction can go stale after a
	// reconfiguration shrinks the allocation; fail cleanly, not with an
	// index panic deep in TreeGen.
	if root < 0 || root >= st.topo.NumGPUs {
		return nil, false, fmt.Errorf("collective: root %d out of range [0,%d)", root, st.topo.NumGPUs)
	}
	chunk := chunkFor(bytes, opts.ChunkBytes)
	key := PlanKey{
		Fingerprint: st.fingerprint,
		Config:      e.cfgKey,
		Backend:     b,
		Op:          op,
		Root:        root,
		Bytes:       bytes,
		ChunkBytes:  chunk,
		DataMode:    opts.DataMode,
		Hybrid:      opts.Hybrid,
		Shape:       shapeKey(op, opts),
	}
	if opts.DataMode {
		// Data-mode Exec closures capture this engine's fabric buffers;
		// the plan must never be replayed from another engine.
		key.EngineID = e.id
	}
	// Memory tier, then (when a PlanStore is attached) the disk tier: a
	// disk hit decodes the stored IR, validates its header against this
	// engine's topology and regenerates the schedule — the packing pipeline
	// never runs, which is the whole point of the tier.
	if cp, _, _ := e.cache.GetTiered(key, e.planDecoder(st)); cp != nil {
		return cp, true, nil
	}
	// Remote planner (blinkd), if configured: still cheaper than packing
	// locally, and its blob lands in both local tiers on success.
	if cp := e.fetchFromService(st, key, opts); cp != nil {
		return cp, true, nil
	}
	// The simulator's per-link FIFO arbitration is already fair, so the
	// stream-reuse workaround for CUDA's unfair scheduling (§4.2.2) is not
	// needed here; separate streams let launch overheads overlap, matching
	// asynchronous CUDA stream issue.
	po := core.PlanOptions{ChunkBytes: chunk, DataMode: opts.DataMode, NoStreamReuse: true}

	var plan *core.Plan
	var err error
	var approxRoots []int
	strategy := ""

	t0 := time.Now()
	switch {
	case st.switchFabric != nil:
		plan, strategy, err = switchPlan(st, b, op, root, bytes, po, opts)
	case b == Blink:
		plan, strategy, approxRoots, err = blinkPlan(e, st, op, root, bytes, po, opts)
	default:
		plan, strategy, err = ncclPlan(st, op, root, bytes, po, opts)
	}
	if err != nil {
		return nil, false, err
	}
	e.observeStage(core.StageCodegen, time.Since(t0).Seconds())
	cp := &CachedPlan{Plan: plan.Freeze(), Strategy: strategy}
	var owner uint64
	if opts.Tenant != nil {
		// Tag the entry so partition fairness charges the insert against
		// this tenant's share of the memory tier.
		owner = opts.Tenant.id
	}
	e.cache.PutTieredOwned(key, cp, encodeCachedPlan(cp), owner)
	if len(approxRoots) > 0 {
		// The plan embeds fast-path packings: register it for the refinement
		// swap (or republish from the refined packings if refinement already
		// finished — see compile.go).
		if rc := e.finishFastPlan(st, approxRoots, pendingSwap{
			key: key, op: op, root: root, bytes: bytes, po: po, opts: opts,
		}); rc != nil {
			cp = rc
		}
	}
	// A Reconfigure may have swapped the engine and invalidated this
	// fingerprint while we were compiling; re-check so the Put above cannot
	// resurrect a dead topology's plan that would pin an LRU slot forever.
	if cur := e.st.Load(); cur != st && cur.fingerprint != st.fingerprint {
		e.cache.InvalidateFingerprint(st.fingerprint)
	}
	return cp, false, nil
}

// GroupResult reports one grouped collective dispatch (RunMany).
type GroupResult struct {
	// Results holds the per-tensor outcomes in issue order.
	Results []Result
	// Seconds is the channel-serialized total: collectives issued on one
	// communicator execute back-to-back (FIFO), as on a real NCCL
	// communicator's stream.
	Seconds float64
	// Bytes is the total payload across the group.
	Bytes int64
	// ThroughputGBs is Bytes/Seconds.
	ThroughputGBs float64
	// CacheHits / CacheMisses count this group's own plan-cache activity:
	// every dispatch reports whether it replayed a cached plan or compiled
	// one, so the counts are exact no matter how many other goroutines
	// dispatch concurrently.
	CacheHits   uint64
	CacheMisses uint64
}

// RunMany issues one collective per payload size through the plan cache and
// returns the grouped result. This is the batched entry point a training
// step uses for its gradient buckets: a model reuses the same handful of
// bucket sizes every iteration, so after the first step every dispatch in
// the group is a warm replay.
func (e *Engine) RunMany(b Backend, op Op, root int, sizes []int64, opts Options) (GroupResult, error) {
	// One state snapshot for the whole group: a Reconfigure landing
	// mid-group must not split the buckets across topologies.
	st := e.st.Load()
	return runGroup(sizes, func(sz int64) (Result, bool, error) {
		return e.runCounted(st, b, op, root, sz, opts)
	})
}

// runGroup dispatches one collective per payload size and aggregates the
// grouped totals plus the group's own cache activity. Each dispatch reports
// its hit/miss directly, so attribution is exact even while other
// goroutines hammer the same cache. Shared by the single-machine and
// cluster engines.
func runGroup(sizes []int64, run func(int64) (Result, bool, error)) (GroupResult, error) {
	if len(sizes) == 0 {
		return GroupResult{}, fmt.Errorf("collective: empty group")
	}
	g := GroupResult{Results: make([]Result, 0, len(sizes))}
	for _, sz := range sizes {
		r, hit, err := run(sz)
		if err != nil {
			return GroupResult{}, err
		}
		if hit {
			g.CacheHits++
		} else {
			g.CacheMisses++
		}
		g.Results = append(g.Results, r)
		g.Seconds += r.Seconds
		g.Bytes += sz
	}
	if g.Seconds > 0 {
		g.ThroughputGBs = float64(g.Bytes) / g.Seconds / 1e9
	}
	return g, nil
}

// isP2POp reports whether op is one of the point-to-point exchange
// collectives (scheduled pairwise rather than over a rooted tree packing).
func isP2POp(op Op) bool { return op == AllToAll || op == SendRecv || op == NeighborExchange }

// p2pPairs expands a point-to-point op into the directed transfers the
// NCCL-style ring baseline schedules, plus whether the pairs form an ordered
// chain. Validation is shared with the core builders so both backends reject
// malformed shapes identically.
func p2pPairs(op Op, n int, bytes int64, opts Options) ([]ring.P2PPair, bool, error) {
	switch op {
	case AllToAll:
		perDest := (bytes / 4) / int64(n) * 4
		if perDest <= 0 {
			return nil, false, fmt.Errorf("collective: payload %d too small for %d ranks", bytes, n)
		}
		var pairs []ring.P2PPair
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					pairs = append(pairs, ring.P2PPair{Src: s, Dst: d, Bytes: perDest})
				}
			}
		}
		return pairs, false, nil
	case SendRecv:
		if err := core.ValidateChain(n, opts.Chain); err != nil {
			return nil, false, err
		}
		var pairs []ring.P2PPair
		for i := 0; i+1 < len(opts.Chain); i++ {
			pairs = append(pairs, ring.P2PPair{Src: opts.Chain[i], Dst: opts.Chain[i+1], Bytes: bytes})
		}
		return pairs, true, nil
	case NeighborExchange:
		if err := core.ValidateNeighbors(n, opts.Neighbors); err != nil {
			return nil, false, err
		}
		var pairs []ring.P2PPair
		for v, row := range opts.Neighbors {
			for _, u := range row {
				pairs = append(pairs, ring.P2PPair{Src: v, Dst: u, Bytes: bytes})
			}
		}
		return pairs, false, nil
	default:
		return nil, false, fmt.Errorf("collective: %v is not a point-to-point op", op)
	}
}

// shapeKey canonicalizes the chain / neighbor-list identity of a
// point-to-point op for the plan cache ("" for shapeless ops): two calls
// with different shapes must never share a frozen schedule.
func shapeKey(op Op, opts Options) string {
	var sb strings.Builder
	switch op {
	case SendRecv:
		sb.WriteString("c:")
		for i, r := range opts.Chain {
			if i > 0 {
				sb.WriteByte('>')
			}
			sb.WriteString(strconv.Itoa(r))
		}
	case NeighborExchange:
		sb.WriteString("n:")
		for v, row := range opts.Neighbors {
			if v > 0 {
				sb.WriteByte(';')
			}
			for i, u := range row {
				if i > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.Itoa(u))
			}
		}
	}
	return sb.String()
}

// treeIRKind maps a tree-scheduled collective to its IR kind plus the
// strategy suffix the engine reports (AllGather shares AllReduce's transfer
// schedule; ReduceScatter and Reduce share the reduce schedule — the paper
// makes the same identifications).
func treeIRKind(op Op) (core.IRKind, string, error) {
	switch op {
	case Broadcast:
		return core.IRTreeBroadcast, "", nil
	case Gather:
		return core.IRTreeGather, "", nil
	case AllReduce:
		return core.IRTreeAllReduce, "", nil
	case AllGather:
		return core.IRTreeAllGather, "+allgather", nil
	case ReduceScatter:
		return core.IRTreeReduceScatter, "+reducescatter", nil
	case Reduce:
		return core.IRTreeReduce, "+reduce", nil
	case Scatter:
		return core.IRTreeScatter, "+scatter", nil
	default:
		return 0, "", fmt.Errorf("collective: unsupported op %v", op)
	}
}

// toIRPairs converts ring-layer transfer pairs into their IR form.
func toIRPairs(pairs []ring.P2PPair) []core.IRPair {
	out := make([]core.IRPair, len(pairs))
	for i, p := range pairs {
		out[i] = core.IRPair{Src: p.Src, Dst: p.Dst, Bytes: p.Bytes}
	}
	return out
}

// blinkPlan compiles a Blink schedule on a point-to-point machine: it
// resolves the packings the op needs, records them (plus the op shape) into
// a serializable PlanIR, and hands the IR to core.CodeGen. It also reports
// which roots' packings were fast-path approximations at compile time (nil
// when none), so the caller can register the plan for the background
// refinement swap.
func blinkPlan(e *Engine, st *engineState, op Op, root int, bytes int64, po core.PlanOptions, opts Options) (*core.Plan, string, []int, error) {
	// NVLink alone may not span the allocation: Blink then packs PCIe trees
	// (and routes point-to-point traffic through the hub).
	f, pcie, strategy := st.nvlFabric, false, "trees"
	fsel := core.FabricNVLink
	if !st.nvlConnected {
		f, pcie, strategy = st.pcieFabric, true, "pcie-trees"
		fsel = core.FabricPCIe
	}
	var approxRoots []int
	packAt := func(r int) (*core.Packing, error) {
		p, approx, err := e.packingOn(st, pcie, r)
		if err == nil && approx {
			approxRoots = append(approxRoots, r)
		}
		return p, err
	}
	ir := &core.PlanIR{Fabric: fsel, Root: root, Bytes: bytes, Opts: po}
	switch op {
	case AllToAll:
		n := st.topo.NumGPUs
		packs := make([]*core.Packing, n)
		for r := 0; r < n; r++ {
			p, err := packAt(r)
			if err != nil {
				return nil, "", nil, err
			}
			packs[r] = p
		}
		ir.Kind, ir.Packings, ir.Strategy = core.IRTreeAllToAll, packs, strategy+"+alltoall"
	case SendRecv:
		ir.Kind, ir.Chain, ir.Strategy = core.IRSendRecvChain, opts.Chain, strategy+"+sendrecv"
		approxRoots = nil
	case NeighborExchange:
		ir.Kind, ir.Neighbors, ir.Strategy = core.IRNeighborExchange, opts.Neighbors, strategy+"+neighbor"
		approxRoots = nil
	default:
		if opts.Hybrid && op == Broadcast && st.nvlConnected {
			// Hybrid is handled by RunHybridBroadcast; plain Run ignores it
			// for non-broadcast ops.
			return nil, "", nil, fmt.Errorf("collective: use RunHybridBroadcast for hybrid transfers")
		}
		kind, suffix, err := treeIRKind(op)
		if err != nil {
			return nil, "", nil, err
		}
		p, err := packAt(root)
		if err != nil {
			return nil, "", nil, err
		}
		ir.Kind, ir.Packings, ir.Strategy = kind, []*core.Packing{p}, strategy+suffix
	}
	plan, err := core.CodeGen(ir, f)
	return plan, ir.Strategy, approxRoots, err
}

// ncclPlan compiles the baseline schedule on a point-to-point machine
// through the same IR path: the IR records which ring family was selected;
// the rings themselves are recomputed from the fabric at codegen.
func ncclPlan(st *engineState, op Op, root int, bytes int64, po core.PlanOptions, opts Options) (*core.Plan, string, error) {
	rings := st.ncclRings()
	// Figure 2b: no NVLink ring -> PCIe fallback.
	f, fsel, pcie := st.nvlFabric, core.FabricNVLink, len(rings) == 0
	if pcie {
		f, fsel = st.pcieFabric, core.FabricPCIe
	}
	ir := &core.PlanIR{Fabric: fsel, Root: root, Bytes: bytes, Opts: po}
	switch {
	case isP2POp(op):
		pairs, chained, err := p2pPairs(op, st.topo.NumGPUs, bytes, opts)
		if err != nil {
			return nil, "", err
		}
		ir.Pairs, ir.Chained = toIRPairs(pairs), chained
		ir.Kind, ir.Strategy = core.IRRingP2P, "rings"
		if pcie {
			ir.Kind, ir.Strategy = core.IRPCIeP2P, "pcie-ring"
		}
	case op == Broadcast || op == Gather || op == Scatter:
		ir.Kind, ir.Strategy = core.IRRingBroadcast, "rings"
		if pcie {
			ir.Kind, ir.Strategy = core.IRPCIeBroadcast, "pcie-ring"
		}
	default:
		ir.Kind, ir.Strategy = core.IRRingAllReduce, "rings"
		if pcie {
			ir.Kind, ir.Strategy = core.IRPCIeAllReduce, "pcie-ring"
		}
	}
	plan, err := core.CodeGen(ir, f)
	return plan, ir.Strategy, err
}

// switchPlan compiles DGX-2 schedules through the IR path: Blink ops
// schedule over the precomputed one-hop packings (recorded into the IR);
// the NCCL baseline uses the switch ring and double-binary-tree kinds.
func switchPlan(st *engineState, b Backend, op Op, root int, bytes int64, po core.PlanOptions, opts Options) (*core.Plan, string, error) {
	f := st.switchFabric
	ir := &core.PlanIR{Fabric: core.FabricSwitch, Root: root, Bytes: bytes, Opts: po}
	if b == Blink {
		switch op {
		case Broadcast, Gather, Scatter:
			kind, suffix, err := treeIRKind(op)
			if err != nil {
				return nil, "", err
			}
			ir.Kind, ir.Packings, ir.Strategy = kind, []*core.Packing{st.oneHop[root]}, "one-hop"+suffix
		case AllToAll:
			ir.Kind, ir.Packings, ir.Strategy = core.IRTreeAllToAll, st.oneHop, "one-hop+alltoall"
		case SendRecv:
			ir.Kind, ir.Chain, ir.Strategy = core.IRSendRecvChain, opts.Chain, "one-hop+sendrecv"
		case NeighborExchange:
			ir.Kind, ir.Neighbors, ir.Strategy = core.IRNeighborExchange, opts.Neighbors, "one-hop+neighbor"
		default:
			ir.Kind, ir.Packings, ir.Strategy = core.IRDGX2AllReduce, st.oneHop, "one-hop"
		}
		plan, err := core.CodeGen(ir, f)
		return plan, ir.Strategy, err
	}
	switch {
	case isP2POp(op):
		pairs, chained, err := p2pPairs(op, st.topo.NumGPUs, bytes, opts)
		if err != nil {
			return nil, "", err
		}
		ir.Pairs, ir.Chained = toIRPairs(pairs), chained
		ir.Kind, ir.Strategy = core.IRSwitchP2P, "ring"
	case op == Broadcast || op == Gather || op == Scatter:
		ir.Kind, ir.Strategy = core.IRSwitchBroadcast, "ring"
	case bytes < DBTreeThresholdBytes:
		ir.Kind, ir.Strategy = core.IRDBTreeAllReduce, "db-tree"
	default:
		ir.Kind, ir.Strategy = core.IRSwitchAllReduce, "ring"
	}
	plan, err := core.CodeGen(ir, f)
	return plan, ir.Strategy, err
}

// FabricFor returns the fabric the given backend's plans move data over:
// the switch fabric on a DGX-2, otherwise the NVLink plane (or the PCIe
// plane when the backend must fall back to it).
func (e *Engine) FabricFor(b Backend) *simgpu.Fabric {
	st := e.st.Load()
	if st.switchFabric != nil {
		return st.switchFabric
	}
	if b == Blink {
		if st.nvlConnected {
			return st.nvlFabric
		}
		return st.pcieFabric
	}
	if len(st.ncclRings()) > 0 {
		return st.nvlFabric
	}
	return st.pcieFabric
}

// Packing exposes the minimized spanning-tree packing the Blink backend
// uses for the given root (one-hop trees on a DGX-2).
func (e *Engine) Packing(root int) (*core.Packing, error) {
	st := e.st.Load()
	if root < 0 || root >= st.topo.NumGPUs {
		return nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, st.topo.NumGPUs)
	}
	if st.switchFabric != nil {
		return st.oneHop[root], nil
	}
	p, _, err := e.packingOn(st, !st.nvlConnected, root)
	return p, err
}

// RunHybridBroadcast executes Blink's hybrid PCIe+NVLink broadcast (§3.4).
func (e *Engine) RunHybridBroadcast(root int, bytes int64, opts Options) (Result, *core.HybridResult, error) {
	st := e.st.Load()
	if st.switchFabric != nil {
		return Result{}, nil, fmt.Errorf("collective: hybrid transfers target DGX-1 class machines")
	}
	if !st.nvlConnected {
		return Result{}, nil, fmt.Errorf("collective: hybrid requires a connected NVLink allocation")
	}
	if root < 0 || root >= st.topo.NumGPUs {
		return Result{}, nil, fmt.Errorf("collective: root %d out of range [0,%d)", root, st.topo.NumGPUs)
	}
	// Hybrid plans are built per call (no plan cache), so the refinement
	// swap does not apply; the fast-path flag is irrelevant here.
	pn, _, err := e.packingOn(st, false, root)
	if err != nil {
		return Result{}, nil, err
	}
	pp, _, err := e.packingOn(st, true, root)
	if err != nil {
		return Result{}, nil, err
	}
	po := core.PlanOptions{ChunkBytes: chunkFor(bytes, opts.ChunkBytes), DataMode: opts.DataMode, NoStreamReuse: true}
	// Hybrid plans execute inside BuildHybridBroadcast; in data mode they
	// move real floats through the caller's per-call arena.
	h, err := core.BuildHybridBroadcast(st.nvlFabric, pn, st.pcieFabric, pp, bytes, po, opts.Buffers)
	if err != nil {
		return Result{}, nil, err
	}
	return Result{
		Seconds:       h.Makespan,
		Bytes:         bytes,
		ThroughputGBs: h.ThroughputGBs,
		Strategy:      "hybrid",
	}, h, nil
}
