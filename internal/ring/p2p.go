package ring

import (
	"fmt"

	"blink/internal/core"
	"blink/internal/simgpu"
)

// P2PPair is one directed point-to-point transfer of the baseline scheduler.
type P2PPair struct {
	Src, Dst int
	Bytes    int64
}

// pathHops returns the hop indices walking the ring forward from src to dst.
func (lr logicalRing) pathHops(src, dst int) ([]int, error) {
	si := -1
	for i, v := range lr.verts {
		if v == src {
			si = i
			break
		}
	}
	if si < 0 {
		return nil, fmt.Errorf("ring: vertex %d not on ring", src)
	}
	var hops []int
	for i := si; lr.verts[i] != dst; i = (i + 1) % len(lr.verts) {
		hops = append(hops, i)
		if len(hops) >= len(lr.verts) {
			return nil, fmt.Errorf("ring: vertex %d not on ring", dst)
		}
	}
	if len(hops) == 0 {
		return nil, fmt.Errorf("ring: transfer %d->%d to itself", src, dst)
	}
	return hops, nil
}

// buildRingP2P schedules each pair's payload store-and-forward along a ring,
// walking hop by hop through every intermediate rank exactly as NCCL's ring
// channels move point-to-point traffic. Pairs are assigned to rings
// round-robin and chunk-pipelined along their path. With chained set, pair
// i+1's chunk k additionally waits on pair i's chunk k delivery — the
// ordered stage semantics of a send/recv pipeline.
func buildRingP2P(f *simgpu.Fabric, lrs []logicalRing, pairs []P2PPair, chained bool, opts Options) (*core.Plan, error) {
	opts.setDefaults()
	if len(lrs) == 0 {
		return nil, fmt.Errorf("ring: no rings available")
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("ring: no transfers")
	}
	b := newBuilder(f, opts)
	chunkFloats := int(opts.ChunkBytes / 4)
	var total int64
	var prevDelivery []int // per-chunk delivery ops of the previous pair
	for pi, p := range pairs {
		floats := int(p.Bytes / 4)
		if floats <= 0 {
			return nil, fmt.Errorf("ring: transfer %d->%d too small (%d bytes)", p.Src, p.Dst, p.Bytes)
		}
		lr := lrs[pi%len(lrs)]
		hops, err := lr.pathHops(p.Src, p.Dst)
		if err != nil {
			return nil, err
		}
		chunks := (floats + chunkFloats - 1) / chunkFloats
		delivery := make([]int, chunks)
		for k := 0; k < chunks; k++ {
			cn := chunkFloats
			if rem := floats - k*chunkFloats; rem < cn {
				cn = rem
			}
			last := -1
			for s, h := range hops {
				var deps []int
				if s > 0 {
					deps = []int{last}
				} else if chained && pi > 0 && k < len(prevDelivery) {
					deps = []int{prevDelivery[k]}
				}
				last = b.addHop(pi, s, pi%len(lrs), lr.hops[h], int64(cn)*4, deps, nil,
					fmt.Sprintf("p2p %d->%d c%d h%d", p.Src, p.Dst, k, s))
			}
			delivery[k] = last
		}
		prevDelivery = delivery
		total += p.Bytes
	}
	return &core.Plan{Ops: b.ops, TotalBytes: total, Fabric: f, Streams: len(b.streams)}, nil
}

// BuildRingP2PPlan schedules pairs over NVLink rings (the NCCL baseline for
// AllToAll, SendRecv chains and neighbor exchange on ring-capable fabrics).
func BuildRingP2PPlan(f *simgpu.Fabric, rings []Ring, pairs []P2PPair, chained bool, opts Options) (*core.Plan, error) {
	if len(rings) == 0 {
		return nil, fmt.Errorf("ring: no rings available")
	}
	lrs := make([]logicalRing, len(rings))
	for i, r := range rings {
		lrs[i] = fromRing(r)
	}
	return buildRingP2P(f, lrs, pairs, chained, opts)
}

// BuildPCIeP2PPlan schedules pairs over the PCIe fallback ring.
func BuildPCIeP2PPlan(f *simgpu.Fabric, nGPUs int, pairs []P2PPair, chained bool, opts Options) (*core.Plan, error) {
	lr, err := PCIeRing(f.Graph, nGPUs)
	if err != nil {
		return nil, err
	}
	return buildRingP2P(f, []logicalRing{lr}, pairs, chained, opts)
}

// BuildSwitchP2PPlan schedules pairs over the natural switch-fabric ring.
func BuildSwitchP2PPlan(f *simgpu.Fabric, pairs []P2PPair, chained bool, opts Options) (*core.Plan, error) {
	lr, err := SwitchRing(f.Graph)
	if err != nil {
		return nil, err
	}
	return buildRingP2P(f, []logicalRing{lr}, pairs, chained, opts)
}
