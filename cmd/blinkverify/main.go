// Command blinkverify runs the randomized differential-verification
// harness: data-mode collectives across random allocations, sizes and
// chunkings on both scheduling backends, checked against their
// mathematical postconditions.
//
// Usage:
//
//	blinkverify -cases 200 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"blink/internal/verify"
)

func main() {
	cases := flag.Int("cases", 100, "number of randomized cases")
	seed := flag.Int64("seed", 1, "RNG seed")
	verbose := flag.Bool("v", false, "print every case")
	flag.Parse()

	rs, err := verify.Run(verify.Options{Cases: *cases, Seed: *seed})
	for _, r := range rs {
		if *verbose || !r.OK {
			status := "ok"
			if !r.OK {
				status = "FAIL " + r.Detail
			}
			fmt.Printf("devs=%v op=%v backend=%v floats=%d chunk=%d: %s\n",
				r.Devs, r.Op, r.Backend, r.Floats, r.Chunk, status)
		}
	}
	pass, fail := verify.Summary(rs)
	fmt.Printf("%d passed, %d failed\n", pass, fail)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
	// Any failed case must fail the run (CI gates on this exit code), not
	// just a harness-level error.
	if err != nil || fail > 0 {
		os.Exit(1)
	}
}
