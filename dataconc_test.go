package blink

import (
	"fmt"
	"sync"
	"testing"
)

// The concurrent data-mode correctness suite: with per-call buffer
// contexts there is no lock anywhere between a *Data call's install, run
// and read steps, so many goroutines hammering one communicator must still
// each observe exactly their own call's results. Payloads are distinct per
// (goroutine, rank) and verified elementwise-exactly (integer-valued
// floats, so float32 addition is exact); any cross-call buffer sharing
// would corrupt at least one goroutine's view. The whole suite runs under
// -race via `make race`.

// dataConcGoroutines is the fan-out per communicator; the issue floor is 8.
const dataConcGoroutines = 12

// allReduceInputs builds rank-distinct, goroutine-distinct integer inputs
// and the expected elementwise sum.
func allReduceInputs(g, ranks, n int) ([][]float32, []float32) {
	inputs := make([][]float32, ranks)
	want := make([]float32, n)
	for v := range inputs {
		in := make([]float32, n)
		for i := range in {
			in[i] = float32(1000*g + 10*v + i%7)
			want[i] += in[i]
		}
		inputs[v] = in
	}
	return inputs, want
}

func TestConcurrentAllReduceDataExact(t *testing.T) {
	for _, backend := range []Backend{BackendBlink, BackendNCCL} {
		comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3, 4, 5, 6, 7}, WithDataMode(), WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		const n = 1024
		var wg sync.WaitGroup
		errs := make(chan error, dataConcGoroutines)
		for g := 0; g < dataConcGoroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Several iterations per goroutine so cold compiles and warm
				// replays both overlap with other callers.
				for iter := 0; iter < 3; iter++ {
					inputs, want := allReduceInputs(g, comm.Size(), n)
					out, err := comm.AllReduceData(inputs)
					if err != nil {
						errs <- err
						return
					}
					for v := range out {
						for i := range out[v] {
							if out[v][i] != want[i] {
								errs <- fmt.Errorf("%v g%d iter%d rank %d elem %d: got %v, want %v",
									backend, g, iter, v, i, out[v][i], want[i])
								return
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

func TestConcurrentBroadcastDataExact(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3, 4, 5, 6, 7}, WithDataMode())
	if err != nil {
		t.Fatal(err)
	}
	const n = 900
	var wg sync.WaitGroup
	errs := make(chan error, dataConcGoroutines)
	for g := 0; g < dataConcGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := g % comm.Size()
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(100*g + i%11)
			}
			out, err := comm.BroadcastData(root, data)
			if err != nil {
				errs <- err
				return
			}
			for v := range out {
				for i := range data {
					if out[v][i] != data[i] {
						errs <- fmt.Errorf("g%d root %d rank %d elem %d: got %v, want %v",
							g, root, v, i, out[v][i], data[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedDataOps interleaves every data-carrying collective on
// one communicator: the strongest cross-call corruption probe, since each
// op touches a different mix of BufData/BufAcc/scratch tags.
func TestConcurrentMixedDataOps(t *testing.T) {
	comm, err := NewComm(DGX1V(), []int{0, 1, 2, 3}, WithDataMode())
	if err != nil {
		t.Fatal(err)
	}
	const n = 512
	size := comm.Size()
	var wg sync.WaitGroup
	errs := make(chan error, 2*dataConcGoroutines)
	for g := 0; g < 2*dataConcGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0:
				inputs, want := allReduceInputs(g, size, n)
				out, err := comm.AllReduceData(inputs)
				if err != nil {
					errs <- err
					return
				}
				for v := range out {
					for i := range out[v] {
						if out[v][i] != want[i] {
							errs <- fmt.Errorf("allreduce g%d rank %d elem %d: got %v want %v", g, v, i, out[v][i], want[i])
							return
						}
					}
				}
			case 1:
				inputs, want := allReduceInputs(g, size, n)
				got, err := comm.ReduceData(g%size, inputs)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != want[i] {
						errs <- fmt.Errorf("reduce g%d elem %d: got %v want %v", g, i, got[i], want[i])
						return
					}
				}
			case 2:
				inputs, _ := allReduceInputs(g, size, n)
				got, err := comm.GatherData(g%size, inputs)
				if err != nil {
					errs <- err
					return
				}
				for v := 0; v < size; v++ {
					for i := 0; i < n; i++ {
						if got[v*n+i] != inputs[v][i] {
							errs <- fmt.Errorf("gather g%d shard %d elem %d: got %v want %v", g, v, i, got[v*n+i], inputs[v][i])
							return
						}
					}
				}
			default:
				data := make([]float32, size*n)
				for i := range data {
					data[i] = float32(31*g + i%13)
				}
				shards, err := comm.ScatterData(g%size, data)
				if err != nil {
					errs <- err
					return
				}
				for v := range shards {
					for i := range shards[v] {
						if shards[v][i] != data[v*n+i] {
							errs <- fmt.Errorf("scatter g%d rank %d elem %d: got %v want %v", g, v, i, shards[v][i], data[v*n+i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestConcurrentClusterDataExact(t *testing.T) {
	cc, err := NewClusterComm(twoServerCluster(t, 3, 5, 100), WithDataMode())
	if err != nil {
		t.Fatal(err)
	}
	const n = 768
	var wg sync.WaitGroup
	errs := make(chan error, dataConcGoroutines)
	for g := 0; g < dataConcGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				inputs, want := allReduceInputs(g, cc.Size(), n)
				out, err := cc.AllReduceData(inputs)
				if err != nil {
					errs <- err
					return
				}
				for r := range out {
					for i := range out[r] {
						if out[r][i] != want[i] {
							errs <- fmt.Errorf("cluster allreduce g%d rank %d elem %d: got %v, want %v",
								g, r, i, out[r][i], want[i])
							return
						}
					}
				}
			} else {
				root := g % cc.Size()
				data := make([]float32, n)
				for i := range data {
					data[i] = float32(100*g + i%17)
				}
				out, err := cc.BroadcastData(root, data)
				if err != nil {
					errs <- err
					return
				}
				for r := range out {
					for i := range data {
						if out[r][i] != data[i] {
							errs <- fmt.Errorf("cluster broadcast g%d root %d rank %d elem %d: got %v, want %v",
								g, root, r, i, out[r][i], data[i])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
