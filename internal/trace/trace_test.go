package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"blink/internal/core"
	"blink/internal/obs"
	"blink/internal/simgpu"
	"blink/internal/topology"
)

func samplePlan(t *testing.T) *core.Plan {
	t.Helper()
	ind, err := topology.DGX1V().Induce([]int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	g := ind.GPUGraph()
	p, err := core.GenerateTrees(g, 0, core.PackOptions{}, core.MinimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := simgpu.NewFabric(ind, g, simgpu.Config{})
	plan, err := core.BuildAllReducePlan(f, p, 32<<20, core.PlanOptions{ChunkBytes: 4 << 20, NoStreamReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestFromPlanProducesEvents(t *testing.T) {
	plan := samplePlan(t)
	tf, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no events")
	}
	// Events are time-sorted, non-negative, with positive durations.
	prev := -1.0
	for _, e := range tf.TraceEvents {
		if e.TS < prev {
			t.Fatal("events not sorted by timestamp")
		}
		prev = e.TS
		if e.Dur <= 0 || e.TS < 0 {
			t.Fatalf("bad event window: %+v", e)
		}
		if e.Ph != "X" {
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	// Reduce ops must be categorized.
	sawReduce := false
	for _, e := range tf.TraceEvents {
		if e.Cat == "reduce" {
			sawReduce = true
		}
	}
	if !sawReduce {
		t.Fatal("no reduce events in an AllReduce trace")
	}
}

// TestFromPlanIdempotent is the regression for the unconditional
// plan.Execute() FromPlan used to issue: tracing a plan that already ran
// must not re-execute it — in data mode that would replay every Exec
// closure's data movement just to read back timings the ops already carry.
func TestFromPlanIdempotent(t *testing.T) {
	plan := samplePlan(t)
	var execs atomic.Int64
	for _, op := range plan.Ops {
		op.Exec = func(*simgpu.BufferSet) { execs.Add(1) }
	}
	want := int64(len(plan.Ops))

	// First trace of a fresh plan executes it exactly once.
	tf1, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != want {
		t.Fatalf("first FromPlan ran %d Exec closures, want %d", got, want)
	}
	// Second trace reuses the recorded timings.
	tf2, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != want {
		t.Fatalf("FromPlan re-executed an already-executed plan: %d closure runs, want %d", got, want)
	}
	var b1, b2 bytes.Buffer
	if err := tf1.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tf2.Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("re-tracing an executed plan changed the trace")
	}

	// Execute-then-trace: a plan run by the caller is traced as-is.
	plan2 := samplePlan(t)
	var execs2 atomic.Int64
	for _, op := range plan2.Ops {
		op.Exec = func(*simgpu.BufferSet) { execs2.Add(1) }
	}
	if _, err := plan2.Execute(); err != nil {
		t.Fatal(err)
	}
	if _, err := FromPlan(plan2); err != nil {
		t.Fatal(err)
	}
	if got := execs2.Load(); got != int64(len(plan2.Ops)) {
		t.Fatalf("FromPlan re-executed a caller-executed plan: %d closure runs, want %d",
			got, len(plan2.Ops))
	}
}

func TestWriteJSON(t *testing.T) {
	plan := samplePlan(t)
	tf, err := FromPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tf.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if _, ok := parsed["traceEvents"]; !ok {
		t.Fatal("traceEvents key missing")
	}
}

// TestFromSpans checks the span-swimlane conversion: one lane per stream
// (sync dispatches on pid 0), a queue event only when the op actually
// waited, and time-sorted output.
func TestFromSpans(t *testing.T) {
	spans := []obs.Span{
		{Seq: 0, Name: "AllReduce", Stream: -1, Strategy: "trees",
			QueuedAt: 0.1, DispatchedAt: 0.1, CompletedAt: 0.3},
		{Seq: 1, Name: "AllToAll", Stream: 2, Strategy: "trees",
			QueuedAt: 0.2, DispatchedAt: 0.5, CompletedAt: 0.6},
	}
	f := FromSpans(spans)
	// Span 0 never waited: one event. Span 1 waited: queue + op events.
	if len(f.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(f.TraceEvents))
	}
	var queued, ops int
	for _, e := range f.TraceEvents {
		switch e.Cat {
		case "queue":
			queued++
			if e.Name != "AllToAll (queued)" || e.PID != 3 {
				t.Fatalf("queue event wrong: %+v", e)
			}
		default:
			ops++
			wantPID := 0
			if e.Name == "AllToAll" {
				wantPID = 3
			}
			if e.PID != wantPID {
				t.Fatalf("op event lane wrong: %+v", e)
			}
		}
	}
	if queued != 1 || ops != 2 {
		t.Fatalf("queued %d ops %d, want 1 and 2", queued, ops)
	}
	for i := 1; i < len(f.TraceEvents); i++ {
		if f.TraceEvents[i].TS < f.TraceEvents[i-1].TS {
			t.Fatal("span trace not time-sorted")
		}
	}
}

func TestSummarize(t *testing.T) {
	plan := samplePlan(t)
	if _, err := plan.Execute(); err != nil {
		t.Fatal(err)
	}
	s := Summarize(plan.Fabric, plan.Ops)
	if s.Makespan <= 0 || len(s.Links) == 0 {
		t.Fatalf("summary empty: %+v", s)
	}
	// Sorted by busy time.
	for i := 1; i < len(s.Links); i++ {
		if s.Links[i].BusySecs > s.Links[i-1].BusySecs {
			t.Fatal("links not sorted by busy time")
		}
	}
	// No link can be busier than the makespan (occupancy is exclusive).
	for _, u := range s.Links {
		if u.Utilization > 1.0+1e-9 {
			t.Fatalf("link %s utilization %.3f > 1", u.Label, u.Utilization)
		}
	}
	var buf bytes.Buffer
	s.Fprint(&buf, 3)
	out := buf.String()
	if !strings.Contains(out, "makespan") || strings.Count(out, "busy") != 3 {
		t.Fatalf("summary rendering wrong:\n%s", out)
	}
}
